package repl

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
)

// FollowerOptions configures a replication follower.
type FollowerOptions struct {
	// ID names this follower in acks and leader status (default "replica").
	ID string
	// Token authenticates against the leader ("" when the leader runs
	// open).
	Token string
	// MaxBatchBytes asks the leader to bound each shipped batch (0 lets
	// the leader choose).
	MaxBatchBytes int
	// PollWait is the long-poll wait requested from the leader when caught
	// up (default 5s).
	PollWait time.Duration
	// MinBackoff/MaxBackoff bound the reconnect backoff (defaults
	// 100ms/3s).
	MinBackoff time.Duration
	MaxBackoff time.Duration
	// Client is the HTTP client used against the leader (default: a client
	// with a 30s timeout, comfortably above PollWait).
	Client *http.Client
	// OnApplied, when set, runs after each applied-and-synced batch and
	// after a snapshot bootstrap — the hook the serving layer uses to
	// refresh derived state (e.g. reload persisted models).
	OnApplied func()
}

// Follower replicates a read-only database from a leader: long-polls
// shipped WAL batches, applies them through the engine's replay
// primitives, makes each batch durable with one fsync, and acks its
// applied LSN back. On stream interruption it reconnects with exponential
// backoff and resumes from its own applied LSN; when its position has
// fallen behind the leader's checkpoint horizon it bootstraps from the
// leader snapshot.
type Follower struct {
	db   *engine.DB
	opts FollowerOptions

	leaderMu sync.Mutex
	leader   string

	connected     atomic.Bool
	leaderLast    atomic.Int64
	leaderDurable atomic.Int64
	framesApplied atomic.Int64
	batches       atomic.Int64
	reconnects    atomic.Int64
	bootstraps    atomic.Int64
	acksSent      atomic.Int64

	errMu   sync.Mutex
	lastErr string
}

// NewFollower builds a follower replicating db from the leader base URL
// (e.g. "http://leader:8080"). The db must already be in replica mode
// (engine.SetReplicaMode).
func NewFollower(db *engine.DB, leaderURL string, opts FollowerOptions) *Follower {
	if opts.ID == "" {
		opts.ID = "replica"
	}
	if opts.PollWait <= 0 {
		opts.PollWait = 5 * time.Second
	}
	if opts.MinBackoff <= 0 {
		opts.MinBackoff = 100 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 3 * time.Second
	}
	if opts.Client == nil {
		opts.Client = &http.Client{Timeout: 30 * time.Second}
	}
	return &Follower{db: db, leader: strings.TrimRight(leaderURL, "/"), opts: opts}
}

// Leader reports the base URL this follower currently tails.
func (f *Follower) Leader() string {
	f.leaderMu.Lock()
	defer f.leaderMu.Unlock()
	return f.leader
}

// SetLeader re-points the follower at a new leader base URL; the next
// replication round tails it. The engine-side divergence handling ((epoch,
// LSN) comparison on the new leader, 409 → bootstrap) makes the switch safe
// mid-stream.
func (f *Follower) SetLeader(url string) {
	f.leaderMu.Lock()
	defer f.leaderMu.Unlock()
	f.leader = strings.TrimRight(url, "/")
}

// Run replicates until ctx is canceled, reconnecting on every failure.
// It only returns ctx.Err().
func (f *Follower) Run(ctx context.Context) error {
	backoff := f.opts.MinBackoff
	for {
		if err := ctx.Err(); err != nil {
			f.connected.Store(false)
			return err
		}
		err := f.SyncOnce(ctx)
		if err != nil {
			if ctx.Err() != nil {
				f.connected.Store(false)
				return ctx.Err()
			}
			f.connected.Store(false)
			f.reconnects.Add(1)
			f.setErr(err)
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				return ctx.Err()
			}
			backoff *= 2
			if backoff > f.opts.MaxBackoff {
				backoff = f.opts.MaxBackoff
			}
			continue
		}
		f.connected.Store(true)
		f.setErr(nil)
		backoff = f.opts.MinBackoff
	}
}

// SyncOnce performs one replication round: request a batch from the local
// applied LSN (long-polling when caught up), apply every intact frame,
// fsync once, run OnApplied, and ack. A 409 from the leader triggers a
// snapshot bootstrap instead. Exported so tests and one-shot tools can
// drive replication without the Run loop.
func (f *Follower) SyncOnce(ctx context.Context) error {
	from := f.db.AppliedLSN()
	reqBody, _ := json.Marshal(walRequest{
		FromLSN:  from,
		MaxBytes: f.opts.MaxBatchBytes,
		WaitMS:   f.opts.PollWait.Milliseconds(),
		Follower: f.opts.ID,
		Epoch:    f.db.Epoch(),
	})
	resp, err := f.post(ctx, PathWAL, reqBody)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		// fall through to apply
	case http.StatusConflict:
		// Our position predates the leader's retention horizon (the frames
		// we need were folded into the snapshot), or our tail diverged from
		// the leader's lineage. Rebase onto the snapshot in both cases.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		return f.bootstrap(ctx)
	default:
		return fmt.Errorf("repl: leader %s: %s", PathWAL, readWireError(resp))
	}
	// Epoch gate before any frame is applied: a response stamped with a
	// lower epoch than ours comes from a deposed leader, and applying its
	// frames would graft a superseded lineage onto this log.
	if respEpoch, perr := strconv.ParseInt(resp.Header.Get(HeaderEpoch), 10, 64); perr == nil &&
		respEpoch != 0 && respEpoch < f.db.Epoch() {
		return fmt.Errorf("%w: leader at epoch %d, local epoch %d", ErrStaleLeader, respEpoch, f.db.Epoch())
	}
	if v, err := strconv.ParseInt(resp.Header.Get(HeaderLastLSN), 10, 64); err == nil {
		f.leaderLast.Store(v)
	}
	if v, err := strconv.ParseInt(resp.Header.Get(HeaderDurableLSN), 10, 64); err == nil {
		f.leaderDurable.Store(v)
	}

	applied := from
	torn, applyErr := engine.ReadFrames(resp.Body, func(payload []byte) error {
		if ferr := fault.Inject(FaultStream); ferr != nil {
			return fmt.Errorf("repl: stream dropped: %w", ferr)
		}
		lsn, aerr := f.db.ApplyReplicated(payload)
		if aerr != nil {
			return aerr
		}
		if lsn > applied {
			applied = lsn
		}
		f.framesApplied.Add(1)
		return nil
	})
	// A torn tail (the batch was cut mid-frame) is not an error: the
	// intact prefix applied, and the next round resumes past it.
	_ = torn

	if applied > from {
		// One fsync per shipped batch — the follower's group commit.
		if serr := f.db.SyncWALTo(applied); serr != nil {
			return serr
		}
		if f.opts.OnApplied != nil {
			f.opts.OnApplied()
		}
		f.batches.Add(1)
	}
	// Ack whatever is applied, even when the stream died mid-batch: the
	// prefix is durable and counts toward quorum.
	if ackErr := f.ack(ctx, applied); ackErr != nil && applyErr == nil {
		return ackErr
	}
	return applyErr
}

// bootstrap rebases the replica onto the leader's checkpoint snapshot.
func (f *Follower) bootstrap(ctx context.Context) error {
	reqBody, _ := json.Marshal(map[string]string{"follower": f.opts.ID})
	resp, err := f.post(ctx, PathSnapshot, reqBody)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("repl: leader %s: %s", PathSnapshot, readWireError(resp))
	}
	blob, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("repl: snapshot read: %w", err)
	}
	// Epoch gate before the image is installed: never rebase onto a deposed
	// leader's snapshot.
	if respEpoch, perr := strconv.ParseInt(resp.Header.Get(HeaderEpoch), 10, 64); perr == nil &&
		respEpoch != 0 && respEpoch < f.db.Epoch() {
		return fmt.Errorf("%w: snapshot from epoch %d, local epoch %d", ErrStaleLeader, respEpoch, f.db.Epoch())
	}
	if err := f.db.BootstrapReplica(blob); err != nil {
		return err
	}
	f.bootstraps.Add(1)
	if want, err := strconv.ParseInt(resp.Header.Get(HeaderSnapLSN), 10, 64); err == nil && want != f.db.AppliedLSN() {
		return fmt.Errorf("repl: bootstrap landed at LSN %d, leader advertised %d", f.db.AppliedLSN(), want)
	}
	if f.opts.OnApplied != nil {
		f.opts.OnApplied()
	}
	return f.ack(ctx, f.db.AppliedLSN())
}

// ack reports the applied LSN to the leader (feeds quorum and lag).
func (f *Follower) ack(ctx context.Context, lsn int64) error {
	reqBody, _ := json.Marshal(map[string]any{"follower": f.opts.ID, "applied_lsn": lsn, "epoch": f.db.Epoch()})
	resp, err := f.post(ctx, PathAck, reqBody)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("repl: leader %s: %s", PathAck, readWireError(resp))
	}
	f.acksSent.Add(1)
	return nil
}

func (f *Follower) post(ctx context.Context, path string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, f.Leader()+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if f.opts.Token != "" {
		req.Header.Set(HeaderToken, f.opts.Token)
	}
	return f.opts.Client.Do(req)
}

func (f *Follower) setErr(err error) {
	f.errMu.Lock()
	defer f.errMu.Unlock()
	if err == nil {
		f.lastErr = ""
		return
	}
	f.lastErr = err.Error()
}

// LastError reports the most recent replication error ("" when healthy).
func (f *Follower) LastError() string {
	f.errMu.Lock()
	defer f.errMu.Unlock()
	return f.lastErr
}

// Connected reports whether the last replication round succeeded.
func (f *Follower) Connected() bool { return f.connected.Load() }

// Lag reports how many frames the replica trails the leader's durable
// watermark, as of the last contact. Negative values clamp to 0 (the
// leader header can be a round stale).
func (f *Follower) Lag() int64 {
	lag := f.leaderDurable.Load() - f.db.AppliedLSN()
	if lag < 0 {
		lag = 0
	}
	return lag
}

// ReplicaStatus is the follower's status report (exposed by the serving
// layer on /v1/repl/status in replica mode).
type ReplicaStatus struct {
	Role          string `json:"role"` // always "replica"
	Epoch         int64  `json:"epoch"`
	Leader        string `json:"leader"`
	ID            string `json:"id"`
	Connected     bool   `json:"connected"`
	AppliedLSN    int64  `json:"applied_lsn"`
	LeaderLastLSN int64  `json:"leader_last_lsn"`
	LagFrames     int64  `json:"lag_frames"`
	Bootstraps    int64  `json:"bootstraps"`
	Reconnects    int64  `json:"reconnects"`
	LastError     string `json:"last_error,omitempty"`
}

// CurrentStatus snapshots the follower's replication state.
func (f *Follower) CurrentStatus() ReplicaStatus {
	return ReplicaStatus{
		Role:          "replica",
		Epoch:         f.db.Epoch(),
		Leader:        f.Leader(),
		ID:            f.opts.ID,
		Connected:     f.connected.Load(),
		AppliedLSN:    f.db.AppliedLSN(),
		LeaderLastLSN: f.leaderLast.Load(),
		LagFrames:     f.Lag(),
		Bootstraps:    f.bootstraps.Load(),
		Reconnects:    f.reconnects.Load(),
		LastError:     f.LastError(),
	}
}

// HandleStatus serves the follower replication status as JSON (mounted on
// /v1/repl/status in replica mode; read-only, no token — it leaks nothing
// a /metrics scrape doesn't).
func (f *Follower) HandleStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, f.CurrentStatus())
}

// Gauges exports the follower-side replication metrics for /metrics.
func (f *Follower) Gauges() map[string]float64 {
	connected := 0.0
	if f.connected.Load() {
		connected = 1
	}
	return map[string]float64{
		"flock_repl_epoch":                float64(f.db.Epoch()),
		"flock_repl_role":                 0, // 1 = leader, 0 = replica, -1 = fenced
		"flock_repl_apply_lsn":            float64(f.db.AppliedLSN()),
		"flock_repl_connected":            connected,
		"flock_repl_lag_frames":           float64(f.Lag()),
		"flock_repl_frames_applied_total": float64(f.framesApplied.Load()),
		"flock_repl_batches_total":        float64(f.batches.Load()),
		"flock_repl_reconnects_total":     float64(f.reconnects.Load()),
		"flock_repl_bootstraps_total":     float64(f.bootstraps.Load()),
		"flock_repl_acks_sent_total":      float64(f.acksSent.Load()),
	}
}

// readWireError extracts {"error": ...} from an error response, falling
// back to the HTTP status.
func readWireError(resp *http.Response) string {
	var e struct {
		Error string `json:"error"`
	}
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if json.Unmarshal(body, &e) == nil && e.Error != "" {
		return fmt.Sprintf("%s (HTTP %d)", e.Error, resp.StatusCode)
	}
	return errors.New(resp.Status).Error()
}
