package repl

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
)

// Options configures the leader side of replication.
type Options struct {
	// Token authenticates followers ("" disables the check).
	Token string
	// Quorum is the number of follower acks a commit must collect before
	// it is acknowledged to the client; 0 (async) never waits.
	Quorum int
	// AckTimeout bounds how long a commit waits for quorum before failing
	// the ack as ambiguous (default 5s).
	AckTimeout time.Duration
	// MaxBatchBytes bounds one shipped batch (default 4 MiB). At least one
	// frame is always shipped regardless.
	MaxBatchBytes int
	// MaxWait caps a follower's long-poll (default 10s).
	MaxWait time.Duration
}

// Leader serves the replication endpoints over a primary database: ships
// WAL frames and the bootstrap snapshot, tracks follower acks, and — under
// the quorum policy — gates commit acknowledgements on those acks via
// engine.SetCommitGate.
type Leader struct {
	db   *engine.DB
	opts Options

	mu        sync.Mutex
	cond      *sync.Cond
	followers map[string]*followerInfo

	shipBatches    atomic.Int64
	shipFrames     atomic.Int64
	shipBytes      atomic.Int64
	shipErrs       atomic.Int64
	shipTorn       atomic.Int64
	snapshots      atomic.Int64
	quorumTimeouts atomic.Int64
}

type followerInfo struct {
	ackLSN   int64
	lastSeen time.Time
}

// NewLeader builds a Leader over db. Install the quorum gate separately
// (db.SetCommitGate(l.Gate)) so callers choose when commits start waiting.
func NewLeader(db *engine.DB, opts Options) *Leader {
	if opts.AckTimeout <= 0 {
		opts.AckTimeout = 5 * time.Second
	}
	if opts.MaxBatchBytes <= 0 {
		opts.MaxBatchBytes = 4 << 20
	}
	if opts.MaxWait <= 0 {
		opts.MaxWait = 10 * time.Second
	}
	l := &Leader{db: db, opts: opts, followers: map[string]*followerInfo{}}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// Quorum reports the configured ack quorum (0 = async).
func (l *Leader) Quorum() int { return l.opts.Quorum }

// Gate is the commit gate: it blocks until lsn has been acked by the
// configured quorum of followers, or fails with ErrQuorumTimeout. Wired
// into the engine with db.SetCommitGate(l.Gate); the engine calls it after
// local durability, outside the commit barrier, so a slow follower delays
// client acks — never checkpoints or other committers' fsyncs.
func (l *Leader) Gate(lsn int64) error {
	if l.opts.Quorum <= 0 {
		return nil
	}
	deadline := time.Now().Add(l.opts.AckTimeout)
	timer := time.AfterFunc(l.opts.AckTimeout, func() {
		l.mu.Lock()
		l.cond.Broadcast()
		l.mu.Unlock()
	})
	defer timer.Stop()
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.quorumLSNLocked() < lsn {
		if !time.Now().Before(deadline) {
			l.quorumTimeouts.Add(1)
			return fmt.Errorf("%w: LSN %d acked by %d/%d followers within %v (write is locally durable; ambiguous commit)",
				ErrQuorumTimeout, lsn, l.ackedCountLocked(lsn), l.opts.Quorum, l.opts.AckTimeout)
		}
		l.cond.Wait()
	}
	return nil
}

// quorumLSNLocked is the highest LSN acked by at least Quorum followers:
// the Quorum-th highest follower ack (0 when fewer followers exist).
func (l *Leader) quorumLSNLocked() int64 {
	if len(l.followers) < l.opts.Quorum {
		return 0
	}
	acks := make([]int64, 0, len(l.followers))
	for _, f := range l.followers {
		acks = append(acks, f.ackLSN)
	}
	sort.Slice(acks, func(i, j int) bool { return acks[i] > acks[j] })
	return acks[l.opts.Quorum-1]
}

func (l *Leader) ackedCountLocked(lsn int64) int {
	n := 0
	for _, f := range l.followers {
		if f.ackLSN >= lsn {
			n++
		}
	}
	return n
}

// noteFollower registers or refreshes a follower's liveness.
func (l *Leader) noteFollower(id string) {
	if id == "" {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	f, ok := l.followers[id]
	if !ok {
		f = &followerInfo{}
		l.followers[id] = f
	}
	f.lastSeen = time.Now()
}

// recordAck advances a follower's acked LSN and wakes quorum waiters.
func (l *Leader) recordAck(id string, lsn int64) {
	if id == "" {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	f, ok := l.followers[id]
	if !ok {
		f = &followerInfo{}
		l.followers[id] = f
	}
	f.lastSeen = time.Now()
	if lsn > f.ackLSN {
		f.ackLSN = lsn
		l.cond.Broadcast()
	}
}

type walRequest struct {
	FromLSN  int64  `json:"from_lsn"`
	MaxBytes int    `json:"max_bytes"`
	WaitMS   int64  `json:"wait_ms"`
	Follower string `json:"follower"`
	// Epoch is the follower's leadership epoch (0 from pre-epoch
	// followers). A higher epoch than the leader's own fences the leader.
	Epoch int64 `json:"epoch"`
}

// fenceOnHigherEpoch deposes this leader when a request carries a higher
// epoch than its own, and reports (with a 503 written) whether the node is
// fenced — deposed leaders must neither ship frames, serve bootstrap
// images, nor record acks: any of those could resurrect acked-nowhere
// history or count a stale generation toward quorum.
func (l *Leader) fenceOnHigherEpoch(w http.ResponseWriter, remoteEpoch int64, source string) (fenced bool) {
	if remoteEpoch > l.db.Epoch() {
		_ = fault.Inject(FaultFence) // arm with latency to widen fence races in chaos schedules
		l.db.Fence(remoteEpoch, source)
	}
	down, observed, via := l.db.Fenced()
	if !down {
		return false
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]any{
		"error": fmt.Sprintf("repl: fenced: this node was deposed by epoch %d (observed via %s); repoint to the new leader", observed, via),
		"epoch": l.db.Epoch(),
	})
	return true
}

// HandleWAL serves one shipped batch: frames in (from_lsn, durable],
// long-polling while the follower is caught up. The scan buffers frames
// under the engine's checkpoint lock (ReadWALSince's no-blocking contract)
// and transmits afterwards, so a slow follower connection never stalls
// checkpoints.
func (l *Leader) HandleWAL(w http.ResponseWriter, r *http.Request) {
	if !tokenOK(l.opts.Token, r) {
		replError(w, http.StatusUnauthorized, errors.New("repl: bad replication token"))
		return
	}
	var req walRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		replError(w, http.StatusBadRequest, fmt.Errorf("repl: bad wal request: %w", err))
		return
	}
	l.noteFollower(req.Follower)
	// Epoch gate before any LSN work. A higher-epoch requester deposes this
	// leader; a fenced leader's tail past the fold point is acked-nowhere
	// history and must never ship.
	if l.fenceOnHigherEpoch(w, req.Epoch, fmt.Sprintf("ship request from follower %q", req.Follower)) {
		return
	}
	if epoch := l.db.Epoch(); req.Epoch != 0 && req.Epoch < epoch && req.FromLSN > l.db.EpochStart() {
		// The requester's log extends past the promotion fold point under a
		// superseded epoch: that tail was acked nowhere. Route it through a
		// snapshot bootstrap, which discards the divergent frames.
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": fmt.Sprintf("repl: diverged: follower %q at LSN %d under stale epoch %d (epoch %d began after LSN %d); re-bootstrap from the snapshot",
				req.Follower, req.FromLSN, req.Epoch, epoch, l.db.EpochStart()),
			"snapshot_lsn": l.db.WALHorizon(),
			"diverged":     true,
		})
		return
	}
	maxBytes := req.MaxBytes
	if maxBytes <= 0 || maxBytes > l.opts.MaxBatchBytes {
		maxBytes = l.opts.MaxBatchBytes
	}
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait < 0 {
		wait = 0
	}
	if wait > l.opts.MaxWait {
		wait = l.opts.MaxWait
	}

	var buf bytes.Buffer
	frames := 0
	deadline := time.Now().Add(wait)
	var last, durable int64
	for {
		buf.Reset()
		frames = 0
		var err error
		last, durable, err = l.db.ReadWALSince(req.FromLSN, maxBytes, func(lsn int64, payload []byte) error {
			frames++
			return engine.AppendFrame(&buf, payload)
		})
		if errors.Is(err, engine.ErrWALTruncated) {
			// The follower's position was folded into the snapshot; it must
			// bootstrap. 409 carries the snapshot LSN so the follower can
			// sanity-check the image it fetches next.
			writeJSON(w, http.StatusConflict, map[string]any{
				"error":        err.Error(),
				"snapshot_lsn": l.db.WALHorizon(),
			})
			return
		}
		if err != nil {
			l.shipErrs.Add(1)
			replError(w, http.StatusInternalServerError, err)
			return
		}
		if frames > 0 || !time.Now().Before(deadline) {
			break
		}
		// Caught up: wait for the durable watermark to move. If the append
		// position is ahead of the watermark (trailing query-log frames
		// never force an fsync of their own), nudge them to disk so the
		// follower converges on the full LSN sequence instead of stalling
		// one fsync behind.
		cur, ch := l.db.WatchDurable()
		if tip := l.db.LastLSN(); tip > cur {
			if serr := l.db.SyncWALTo(tip); serr == nil {
				continue
			}
		}
		select {
		case <-ch:
		case <-time.After(time.Until(deadline)):
		case <-r.Context().Done():
			return
		}
	}

	body := buf.Bytes()
	torn := false
	if len(body) > 0 {
		if ferr := fault.Inject(FaultShip); ferr != nil {
			// Chaos: tear the batch mid-frame, as if the connection died
			// mid-transfer. The follower applies the intact prefix and
			// resumes from its own applied LSN.
			body = body[:len(body)/2+1]
			torn = true
			l.shipTorn.Add(1)
		}
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(HeaderLastLSN, fmt.Sprint(last))
	w.Header().Set(HeaderDurableLSN, fmt.Sprint(durable))
	w.Header().Set(HeaderEpoch, fmt.Sprint(l.db.Epoch()))
	if _, err := w.Write(body); err != nil {
		l.shipErrs.Add(1)
		return
	}
	l.shipBatches.Add(1)
	if !torn {
		l.shipFrames.Add(int64(frames))
	}
	l.shipBytes.Add(int64(len(body)))
}

// HandleSnapshot ships the bootstrap image: the leader's on-disk
// checkpoint snapshot, buffered under the checkpoint lock so a concurrent
// checkpoint cannot swap the file mid-read.
func (l *Leader) HandleSnapshot(w http.ResponseWriter, r *http.Request) {
	if !tokenOK(l.opts.Token, r) {
		replError(w, http.StatusUnauthorized, errors.New("repl: bad replication token"))
		return
	}
	var req struct {
		Follower string `json:"follower"`
	}
	_ = json.NewDecoder(r.Body).Decode(&req)
	l.noteFollower(req.Follower)
	// A fenced leader's checkpoint may already have folded divergent tail
	// frames; bootstrapping a follower from it would spread them.
	if l.fenceOnHigherEpoch(w, 0, "") {
		return
	}
	blob, lsn, err := l.db.SnapshotForShip()
	if err != nil {
		// No checkpoint has run yet: the whole history is still in the log
		// and the follower replicates from LSN 0 instead.
		replError(w, http.StatusNotFound, err)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set(HeaderSnapLSN, fmt.Sprint(lsn))
	w.Header().Set(HeaderEpoch, fmt.Sprint(l.db.Epoch()))
	if _, err := w.Write(blob); err != nil {
		return
	}
	l.snapshots.Add(1)
}

// HandleAck records a follower's applied LSN (the quorum feed and the lag
// gauge source).
func (l *Leader) HandleAck(w http.ResponseWriter, r *http.Request) {
	if !tokenOK(l.opts.Token, r) {
		replError(w, http.StatusUnauthorized, errors.New("repl: bad replication token"))
		return
	}
	var req struct {
		Follower   string `json:"follower"`
		AppliedLSN int64  `json:"applied_lsn"`
		Epoch      int64  `json:"epoch"`
	}
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		replError(w, http.StatusBadRequest, fmt.Errorf("repl: bad ack: %w", err))
		return
	}
	if req.Follower == "" {
		replError(w, http.StatusBadRequest, errors.New("repl: ack requires a follower id"))
		return
	}
	// Epoch check before the ack LSN is recorded: an ack from a higher
	// epoch fences this leader, and a stale-epoch ack must never count
	// toward quorum (it acknowledges a superseded lineage's frames).
	if l.fenceOnHigherEpoch(w, req.Epoch, fmt.Sprintf("ack from follower %q", req.Follower)) {
		return
	}
	if epoch := l.db.Epoch(); req.Epoch != 0 && req.Epoch < epoch {
		writeJSON(w, http.StatusConflict, map[string]any{
			"error": fmt.Sprintf("repl: stale epoch ack from follower %q (epoch %d, current %d); not counted toward quorum",
				req.Follower, req.Epoch, epoch),
			"epoch": epoch,
		})
		return
	}
	l.recordAck(req.Follower, req.AppliedLSN)
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// FollowerStatus is one follower's view in the leader status report.
type FollowerStatus struct {
	ID         string `json:"id"`
	AckLSN     int64  `json:"ack_lsn"`
	LagFrames  int64  `json:"lag_frames"`
	LastSeenMS int64  `json:"last_seen_ms"`
}

// Status is the leader's replication status report (GET /v1/repl/status).
type Status struct {
	Role       string           `json:"role"` // "leader" or "fenced"
	Epoch      int64            `json:"epoch"`
	EpochStart int64            `json:"epoch_start"`
	LastLSN    int64            `json:"last_lsn"`
	DurableLSN int64            `json:"durable_lsn"`
	Horizon    int64            `json:"horizon"`
	AckPolicy  string           `json:"ack_policy"`
	Quorum     int              `json:"quorum,omitempty"`
	QuorumLSN  int64            `json:"quorum_lsn,omitempty"`
	Followers  []FollowerStatus `json:"followers"`
}

// CurrentStatus snapshots the leader's replication state.
func (l *Leader) CurrentStatus() Status {
	st := Status{
		Role:       "leader",
		Epoch:      l.db.Epoch(),
		EpochStart: l.db.EpochStart(),
		LastLSN:    l.db.LastLSN(),
		DurableLSN: l.db.DurableLSN(),
		Horizon:    l.db.WALHorizon(),
		AckPolicy:  "async",
	}
	if down, _, _ := l.db.Fenced(); down {
		st.Role = "fenced"
	}
	if l.opts.Quorum > 0 {
		st.AckPolicy = "quorum"
		st.Quorum = l.opts.Quorum
	}
	now := time.Now()
	l.mu.Lock()
	st.QuorumLSN = 0
	if l.opts.Quorum > 0 {
		st.QuorumLSN = l.quorumLSNLocked()
	}
	for id, f := range l.followers {
		st.Followers = append(st.Followers, FollowerStatus{
			ID:         id,
			AckLSN:     f.ackLSN,
			LagFrames:  st.DurableLSN - f.ackLSN,
			LastSeenMS: now.Sub(f.lastSeen).Milliseconds(),
		})
	}
	l.mu.Unlock()
	sort.Slice(st.Followers, func(i, j int) bool { return st.Followers[i].ID < st.Followers[j].ID })
	return st
}

// HandleStatus serves the leader replication status as JSON.
func (l *Leader) HandleStatus(w http.ResponseWriter, r *http.Request) {
	if !tokenOK(l.opts.Token, r) {
		replError(w, http.StatusUnauthorized, errors.New("repl: bad replication token"))
		return
	}
	writeJSON(w, http.StatusOK, l.CurrentStatus())
}

// Gauges exports the leader-side replication metrics for /metrics.
func (l *Leader) Gauges() map[string]float64 {
	st := l.CurrentStatus()
	role := 1.0 // 1 = leader, 0 = replica, -1 = fenced
	if st.Role == "fenced" {
		role = -1
	}
	g := map[string]float64{
		"flock_repl_epoch":                   float64(st.Epoch),
		"flock_repl_role":                    role,
		"flock_repl_followers":               float64(len(st.Followers)),
		"flock_repl_quorum":                  float64(l.opts.Quorum),
		"flock_repl_quorum_lsn":              float64(st.QuorumLSN),
		"flock_repl_ship_batches_total":      float64(l.shipBatches.Load()),
		"flock_repl_ship_frames_total":       float64(l.shipFrames.Load()),
		"flock_repl_ship_bytes_total":        float64(l.shipBytes.Load()),
		"flock_repl_ship_errors_total":       float64(l.shipErrs.Load()),
		"flock_repl_ship_torn_total":         float64(l.shipTorn.Load()),
		"flock_repl_snapshots_total":         float64(l.snapshots.Load()),
		"flock_repl_quorum_timeouts_total":   float64(l.quorumTimeouts.Load()),
		"flock_repl_commit_gate_waits_total": float64(engine.CommitGateWaits()),
	}
	for _, f := range st.Followers {
		g[fmt.Sprintf(`flock_repl_ack_lsn{follower=%q}`, f.ID)] = float64(f.AckLSN)
		g[fmt.Sprintf(`flock_repl_follower_lag_frames{follower=%q}`, f.ID)] = float64(f.LagFrames)
	}
	return g
}

// Register mounts the replication endpoints on mux.
func (l *Leader) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST "+PathWAL, l.HandleWAL)
	mux.HandleFunc("POST "+PathSnapshot, l.HandleSnapshot)
	mux.HandleFunc("POST "+PathAck, l.HandleAck)
	mux.HandleFunc("GET "+PathStatus, l.HandleStatus)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func replError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, map[string]string{"error": err.Error()})
}
