package repl

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"testing"

	"repro/internal/engine"
)

// validStreamBytes produces a real shipped-batch body — length+CRC framed
// WAL payloads from an actual leader workload, exactly what HandleWAL
// streams — plus the LSN of its last frame.
func validStreamBytes(tb testing.TB) ([]byte, int64) {
	tb.Helper()
	db, _, err := engine.OpenDirDB(tb.TempDir(), false)
	if err != nil {
		tb.Fatal(err)
	}
	if _, err := db.Exec("CREATE TABLE fz (id int, v int)"); err != nil {
		tb.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if _, err := db.Exec(fmt.Sprintf("INSERT INTO fz VALUES (%d, %d)", i, i*10)); err != nil {
			tb.Fatal(err)
		}
	}
	var buf bytes.Buffer
	last, _, err := db.ReadWALSince(0, 1<<30, func(lsn int64, p []byte) error {
		return engine.AppendFrame(&buf, p)
	})
	if err != nil {
		tb.Fatal(err)
	}
	if err := db.CloseDurability(); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes(), last
}

// epochFrame encodes one framed WALEpoch record — the in-band leadership
// transition — with an arbitrary (possibly hostile) LSN and epoch.
func epochFrame(tb testing.TB, lsn, epoch int64) []byte {
	tb.Helper()
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(&engine.WALRecord{
		LSN: lsn, Kind: engine.WALEpoch, Epoch: epoch,
	}); err != nil {
		tb.Fatal(err)
	}
	var out bytes.Buffer
	if err := engine.AppendFrame(&out, payload.Bytes()); err != nil {
		tb.Fatal(err)
	}
	return out.Bytes()
}

// FuzzReplStream hammers the follower's apply path with mutated shipped
// batches: truncated frames, corrupt payloads, hostile epoch/LSN headers
// inside WALEpoch records, duplicated and reordered frames. Invariants —
// applying never panics, the replica's epoch never decreases (a stale
// epoch record must never take effect), and a batch that applied cleanly
// is idempotent: re-applying it moves nothing.
func FuzzReplStream(f *testing.F) {
	valid, last := validStreamBytes(f)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0xde, 0xad, 0xbe, 0xef})                                   // garbage, not even a frame header
	f.Add(valid[:len(valid)-3])                                             // truncated mid-frame
	f.Add(valid[:5])                                                        // truncated mid-header
	f.Add(append(valid, valid...))                                          // whole stream duplicated (stale LSNs)
	f.Add(append(valid, 0xFF, 0xFF, 0xFF, 0xFF, 0, 0, 0, 0))                // 4GiB length field tail
	f.Add(append(append([]byte{}, valid...), epochFrame(f, last+1, 2)...))  // clean promotion
	f.Add(append(append([]byte{}, valid...), epochFrame(f, last+1, 0)...))  // stale epoch 0
	f.Add(append(append([]byte{}, valid...), epochFrame(f, last+1, -7)...)) // negative epoch
	f.Add(append(append([]byte{}, valid...), epochFrame(f, last+9, 2)...))  // epoch record past a gap
	f.Add(epochFrame(f, 1, 1<<40))                                          // epoch from the far future, LSN 1
	mut := append([]byte(nil), valid...)
	if len(mut) > 12 {
		mut[len(mut)-1] ^= 0xFF // corrupt the last frame's payload bytes
		f.Add(mut)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		db, _, err := engine.OpenDirDB(t.TempDir(), false)
		if err != nil {
			t.Fatal(err)
		}
		defer db.CloseDurability()
		db.SetReplicaMode("fuzz://leader")

		epoch := db.Epoch()
		apply := func() (lastErr error) {
			_, _ = engine.ReadFrames(bytes.NewReader(data), func(p []byte) error {
				if _, aerr := db.ApplyReplicated(p); aerr != nil {
					lastErr = aerr
					return aerr // a rejected frame ends the batch, like SyncOnce
				}
				return nil
			})
			if e := db.Epoch(); e < epoch {
				t.Fatalf("epoch went backwards: %d -> %d", epoch, e)
			} else {
				epoch = e
			}
			return lastErr
		}

		firstErr := apply()
		if errors.Is(firstErr, engine.ErrStaleEpoch) && db.Epoch() != 1 {
			t.Fatalf("stale epoch record rejected yet epoch moved to %d", db.Epoch())
		}
		applied := db.AppliedLSN()
		_ = apply()
		if firstErr == nil && db.AppliedLSN() != applied {
			t.Fatalf("clean batch not idempotent: applied LSN %d -> %d", applied, db.AppliedLSN())
		}
	})
}

// TestApplyReplicatedEpochGate pins the epoch gate deterministically: a
// WALEpoch record below the replica's epoch is rejected with ErrStaleEpoch
// before any LSN bookkeeping, and one above it raises the epoch in-band.
func TestApplyReplicatedEpochGate(t *testing.T) {
	rdb := newReplicaNode(t, "", "test://leader")
	rdb.Fence(3, "test: newer lineage")
	if _, err := rdb.PromoteToLeader(); err != nil { // consumes the fence: epoch 4
		t.Fatal(err)
	}
	rdb.DemoteToReplica("test://leader")
	if rdb.Epoch() != 4 {
		t.Fatalf("setup epoch %d, want 4", rdb.Epoch())
	}

	next := rdb.AppliedLSN() + 1
	stale := epochFrame(t, next, 2)
	framed := func(b []byte) []byte { // strip the stream framing: ApplyReplicated takes the payload
		var payload []byte
		if _, err := engine.ReadFrames(bytes.NewReader(b), func(p []byte) error {
			payload = append([]byte(nil), p...)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return payload
	}
	before := rdb.AppliedLSN()
	if _, err := rdb.ApplyReplicated(framed(stale)); !errors.Is(err, engine.ErrStaleEpoch) {
		t.Fatalf("stale epoch record: got %v, want ErrStaleEpoch", err)
	}
	if rdb.AppliedLSN() != before || rdb.Epoch() != 4 {
		t.Fatalf("stale record moved state: lsn %d->%d epoch %d", before, rdb.AppliedLSN(), rdb.Epoch())
	}

	if _, err := rdb.ApplyReplicated(framed(epochFrame(t, next, 7))); err != nil {
		t.Fatalf("epoch raise: %v", err)
	}
	if rdb.Epoch() != 7 {
		t.Fatalf("in-band epoch adoption: epoch %d, want 7", rdb.Epoch())
	}
}
