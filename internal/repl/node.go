package repl

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
)

// Node composes the leader and follower halves of replication behind one
// role state machine, so a process can change roles at runtime: a follower
// can be promoted into the leader of a new epoch, a leader (typically a
// fenced one) can be demoted and re-pointed at the new leader, and a
// follower can be re-pointed without restarting. The serving layer mounts
// one Node and the role decides which handlers answer.
//
// Role transitions:
//
//	follower --Promote--> leader      (engine.PromoteToLeader, epoch+1)
//	leader   --Repoint--> follower    (engine.DemoteToReplica; fence clears)
//	follower --Repoint--> follower    (re-target the tailing loop)
//
// Every transition holds the node lock, so concurrent admin calls
// serialize; the underlying engine transitions hold the commit barrier and
// are individually crash-safe, so at most one writable node exists under
// any schedule.
type Node struct {
	db   *engine.DB
	opts NodeOptions

	mu       sync.Mutex
	leader   *Leader
	follower *Follower
	runCtx   context.Context    // the Run lifetime; parents follower loops
	loopStop context.CancelFunc // stops the current follower loop
	loopDone chan struct{}      // closed when the current follower loop exits

	promotions atomic.Int64
	repoints   atomic.Int64
}

// NodeOptions configures both halves of a Node; only the half matching the
// current role is active.
type NodeOptions struct {
	Leader   Options
	Follower FollowerOptions
}

// NewLeaderNode builds a Node that starts as the leader. The quorum commit
// gate (when configured) is installed immediately.
func NewLeaderNode(db *engine.DB, opts NodeOptions) *Node {
	n := &Node{db: db, opts: opts}
	n.leader = NewLeader(db, opts.Leader)
	if n.leader.Quorum() > 0 {
		db.SetCommitGate(n.leader.Gate)
	}
	return n
}

// NewFollowerNode builds a Node that starts as a follower tailing
// leaderURL. The db must already be in replica mode.
func NewFollowerNode(db *engine.DB, leaderURL string, opts NodeOptions) *Node {
	n := &Node{db: db, opts: opts}
	n.follower = NewFollower(db, leaderURL, opts.Follower)
	return n
}

// Run owns the node's replication lifetime: it starts the tailing loop when
// the node is (or becomes) a follower and returns when ctx is canceled.
func (n *Node) Run(ctx context.Context) error {
	n.mu.Lock()
	n.runCtx = ctx
	if n.follower != nil {
		n.startLoopLocked()
	}
	n.mu.Unlock()
	<-ctx.Done()
	n.mu.Lock()
	n.stopLoopLocked()
	n.mu.Unlock()
	return ctx.Err()
}

// startLoopLocked spawns the follower tailing loop under a child context.
func (n *Node) startLoopLocked() {
	if n.runCtx == nil || n.follower == nil || n.loopStop != nil {
		return
	}
	ctx, cancel := context.WithCancel(n.runCtx)
	done := make(chan struct{})
	n.loopStop, n.loopDone = cancel, done
	f := n.follower
	go func() {
		defer close(done)
		_ = f.Run(ctx)
	}()
}

// stopLoopLocked stops the follower loop and waits for it to exit, so no
// stale loop applies frames after a role change.
func (n *Node) stopLoopLocked() {
	if n.loopStop == nil {
		return
	}
	n.loopStop()
	<-n.loopDone
	n.loopStop, n.loopDone = nil, nil
}

// Promote turns this follower into the leader of a new epoch: the tailing
// loop stops, the engine folds the replayed state into a fresh epoch+1
// snapshot+WAL and opens the write gate, and the leader half (with its
// quorum gate, when configured) takes over the replication endpoints.
// Idempotent on an already-promoted node. On failure the node resumes
// tailing: it is never left half-promoted.
func (n *Node) Promote(ctx context.Context) (int64, error) {
	if err := fault.Inject(FaultPromote); err != nil {
		return 0, fmt.Errorf("repl: promote aborted: %w", err)
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.leader != nil && n.follower == nil {
		return n.db.Epoch(), nil
	}
	if n.follower == nil {
		return 0, errors.New("repl: promote: node has no replication role")
	}
	n.stopLoopLocked()
	epoch, err := n.db.PromoteToLeader()
	if err != nil {
		// Still a replica (PromoteToLeader's contract); resume tailing so a
		// failed promotion degrades to "still a follower", not "stuck".
		n.startLoopLocked()
		return 0, err
	}
	n.follower = nil
	n.leader = NewLeader(n.db, n.opts.Leader)
	if n.leader.Quorum() > 0 {
		n.db.SetCommitGate(n.leader.Gate)
	}
	n.promotions.Add(1)
	return epoch, nil
}

// Repoint re-targets this node at leaderURL. A follower swaps the URL its
// tailing loop polls; a leader (typically a fenced ex-leader rejoining the
// new lineage) demotes to a read-only replica first — its commit gate is
// removed and the fence clears. A diverged unreplicated tail is detected by
// the new leader's (epoch, LSN) comparison and resolved by the follower's
// existing 409 → bootstrap path, which discards the tail.
func (n *Node) Repoint(ctx context.Context, leaderURL string) error {
	if err := fault.Inject(FaultRepoint); err != nil {
		return fmt.Errorf("repl: repoint aborted: %w", err)
	}
	leaderURL = strings.TrimRight(leaderURL, "/")
	if leaderURL == "" {
		return errors.New("repl: repoint requires a leader URL")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.follower != nil {
		n.follower.SetLeader(leaderURL)
		n.startLoopLocked() // no-op when the loop is already running
		n.repoints.Add(1)
		return nil
	}
	if n.leader == nil {
		return errors.New("repl: repoint: node has no replication role")
	}
	n.db.SetCommitGate(nil)
	n.db.DemoteToReplica(leaderURL)
	n.leader = nil
	n.follower = NewFollower(n.db, leaderURL, n.opts.Follower)
	n.startLoopLocked()
	n.repoints.Add(1)
	return nil
}

// Role reports the node's current role: "leader", "fenced" (a deposed
// leader that cannot ack writes), or "replica".
func (n *Node) Role() string {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.roleLocked()
}

func (n *Node) roleLocked() string {
	if n.follower != nil {
		return "replica"
	}
	if down, _, _ := n.db.Fenced(); down {
		return "fenced"
	}
	return "leader"
}

// Epoch reports the node's current leadership epoch.
func (n *Node) Epoch() int64 { return n.db.Epoch() }

// Follower returns the follower half when the node is a replica (nil
// otherwise) — the lag and connectivity source for readiness gating.
func (n *Node) Follower() *Follower {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.follower
}

// ProbePeers asks each peer for its replication status and fences this
// node if any peer reports a higher epoch. Run at boot on a leader: a
// crashed-and-restarted ex-leader whose cluster elected a new leader while
// it was down comes back fenced instead of accepting doomed writes. Probe
// failures are ignored (the peer may simply be down); in-band fencing via
// ship/ack requests still applies later.
func (n *Node) ProbePeers(ctx context.Context, peers []string) {
	client := n.opts.Follower.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	for _, peer := range peers {
		peer = strings.TrimRight(peer, "/")
		if peer == "" {
			continue
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+PathStatus, nil)
		if err != nil {
			continue
		}
		if n.opts.Follower.Token != "" {
			req.Header.Set(HeaderToken, n.opts.Follower.Token)
		}
		resp, err := client.Do(req)
		if err != nil {
			continue
		}
		var st struct {
			Epoch int64 `json:"epoch"`
		}
		derr := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if derr != nil || resp.StatusCode != http.StatusOK {
			continue
		}
		if st.Epoch > n.db.Epoch() {
			n.db.Fence(st.Epoch, fmt.Sprintf("boot status probe of peer %s", peer))
		}
	}
}

// CurrentStatus snapshots whichever half is active, as an any for JSON
// serving (Status for a leader, ReplicaStatus for a replica).
func (n *Node) CurrentStatus() any {
	n.mu.Lock()
	l, f := n.leader, n.follower
	n.mu.Unlock()
	if f != nil {
		return f.CurrentStatus()
	}
	return l.CurrentStatus()
}

// Gauges exports the active half's metrics plus the role-transition
// counters.
func (n *Node) Gauges() map[string]float64 {
	n.mu.Lock()
	l, f := n.leader, n.follower
	n.mu.Unlock()
	var g map[string]float64
	if f != nil {
		g = f.Gauges()
	} else {
		g = l.Gauges()
	}
	g["flock_repl_promotions_total"] = float64(n.promotions.Load())
	g["flock_repl_repoints_total"] = float64(n.repoints.Load())
	return g
}

// Register mounts the replication endpoints with role-aware dispatch: the
// ship/snapshot/ack endpoints only answer while the node leads (a replica
// answers 503 with an X-Flock-Leader hint so a mispointed follower finds
// the right node), and /v1/repl/status serves whichever half is active.
func (n *Node) Register(mux *http.ServeMux) {
	leaderOnly := func(h func(*Leader, http.ResponseWriter, *http.Request)) http.HandlerFunc {
		return func(w http.ResponseWriter, r *http.Request) {
			n.mu.Lock()
			l, f := n.leader, n.follower
			n.mu.Unlock()
			if l == nil {
				if f != nil {
					w.Header().Set("X-Flock-Leader", f.Leader())
				}
				replError(w, http.StatusServiceUnavailable,
					errors.New("repl: not the leader; follow X-Flock-Leader"))
				return
			}
			h(l, w, r)
		}
	}
	mux.HandleFunc("POST "+PathWAL, leaderOnly((*Leader).HandleWAL))
	mux.HandleFunc("POST "+PathSnapshot, leaderOnly((*Leader).HandleSnapshot))
	mux.HandleFunc("POST "+PathAck, leaderOnly((*Leader).HandleAck))
	mux.HandleFunc("GET "+PathStatus, func(w http.ResponseWriter, r *http.Request) {
		n.mu.Lock()
		l := n.leader
		n.mu.Unlock()
		if l != nil && !tokenOK(l.opts.Token, r) {
			replError(w, http.StatusUnauthorized, errors.New("repl: bad replication token"))
			return
		}
		writeJSON(w, http.StatusOK, n.CurrentStatus())
	})
}
