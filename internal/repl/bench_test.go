package repl

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/engine"
)

// BenchmarkReplicationShip measures the per-frame ship+apply round trip:
// each op commits one row on the leader and drives the follower until it
// has applied it (HTTP batch fetch, replay, one fsync, ack). The
// frames/sec metric feeds benchguard via the CI bench job.
func BenchmarkReplicationShip(b *testing.B) {
	ldb, _, err := engine.OpenDirDB(b.TempDir(), false)
	if err != nil {
		b.Fatal(err)
	}
	defer ldb.CloseDurability()
	l := NewLeader(ldb, Options{})
	mux := http.NewServeMux()
	l.Register(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()
	if _, err := ldb.Exec("CREATE TABLE bench (id int, v int)"); err != nil {
		b.Fatal(err)
	}

	rdb, _, err := engine.OpenDirDB(b.TempDir(), false)
	if err != nil {
		b.Fatal(err)
	}
	defer rdb.CloseDurability()
	rdb.SetReplicaMode(srv.URL)
	f := NewFollower(rdb, srv.URL, FollowerOptions{ID: "bench", PollWait: time.Millisecond})
	if err := f.SyncOnce(context.Background()); err != nil {
		b.Fatal(err)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ldb.Exec(fmt.Sprintf("INSERT INTO bench VALUES (%d, %d)", i, i)); err != nil {
			b.Fatal(err)
		}
		for rdb.AppliedLSN() < ldb.DurableLSN() {
			if err := f.SyncOnce(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "frames/sec")
}

// BenchmarkReplicationQuorum measures quorum-ack commit latency: the gate
// is installed, so each Exec blocks until the configured quorum of live
// followers has applied and acked the frame. followers=N runs N tailing
// followers with quorum=N (every follower must ack). Scheduling-shaped —
// excluded from the benchguard gate, informational in the artifact.
func BenchmarkReplicationQuorum(b *testing.B) {
	for _, n := range []int{1, 2} {
		b.Run(fmt.Sprintf("followers=%d", n), func(b *testing.B) {
			ldb, _, err := engine.OpenDirDB(b.TempDir(), false)
			if err != nil {
				b.Fatal(err)
			}
			defer ldb.CloseDurability()
			l := NewLeader(ldb, Options{Quorum: n, AckTimeout: 10 * time.Second})
			mux := http.NewServeMux()
			l.Register(mux)
			srv := httptest.NewServer(mux)
			defer srv.Close()
			if _, err := ldb.Exec("CREATE TABLE bench (id int)"); err != nil {
				b.Fatal(err)
			}

			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			done := make(chan struct{}, n)
			for i := 0; i < n; i++ {
				rdb, _, err := engine.OpenDirDB(b.TempDir(), false)
				if err != nil {
					b.Fatal(err)
				}
				defer rdb.CloseDurability()
				rdb.SetReplicaMode(srv.URL)
				f := NewFollower(rdb, srv.URL, FollowerOptions{
					ID:       fmt.Sprintf("bench-%d", i),
					PollWait: time.Second,
				})
				go func() { defer func() { done <- struct{}{} }(); f.Run(ctx) }()
			}
			ldb.SetCommitGate(l.Gate)

			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := ldb.Exec(fmt.Sprintf("INSERT INTO bench VALUES (%d)", i)); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			ldb.SetCommitGate(nil)
			cancel()
			for i := 0; i < n; i++ {
				<-done
			}
		})
	}
}
