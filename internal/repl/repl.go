// Package repl is the leader/follower replication plane: WAL log shipping
// over HTTP with resume-from-LSN, snapshot bootstrap, and configurable ack
// policies (async or quorum).
//
// The wire format is deliberately thin. The WAL is already a physical
// replication log — CRC-framed, LSN-stamped, torn-tail tolerant — so the
// leader ships the exact frame bytes it has on disk and the follower
// appends them at the same LSNs and installs them through the engine's
// replay primitives. Both sides therefore agree on exactly one sequence of
// frames, and every recovery property the single-node engine proves (CRC
// tears, idempotent replay, crash-point fuzzing) transfers to the replica
// for free.
//
// Protocol (all under /v1/repl/, authenticated by a shared static token in
// the X-Flock-Repl-Token header; sha256 + constant-time compare):
//
//	POST /v1/repl/wal      {"from_lsn":N,"max_bytes":B,"wait_ms":W,"follower":"id","epoch":E}
//	  -> 200 application/octet-stream: length+CRC framed WAL payloads with
//	     LSNs in (N, durable]. Long-polls up to wait_ms when the follower
//	     is caught up. Headers: X-Flock-Repl-Last-LSN (last frame in the
//	     body), X-Flock-Repl-Durable-LSN (leader durable watermark),
//	     X-Flock-Repl-Epoch (the leader's current epoch).
//	  -> 409 {"error":..., "snapshot_lsn":H} when N predates the retention
//	     horizon (a checkpoint folded those frames away), OR when the
//	     requester's (epoch, LSN) proves a diverged unreplicated tail
//	     ({"diverged":true}): bootstrap from the snapshot in both cases.
//	  -> 503 {"error":"fenced: ..."} when this node has been deposed; a
//	     follower must be repointed to the new leader.
//	POST /v1/repl/snapshot {"follower":"id"}
//	  -> 200 application/octet-stream: the leader checkpoint image.
//	     Header: X-Flock-Repl-LSN (the LSN the image covers).
//	POST /v1/repl/ack      {"follower":"id","applied_lsn":N,"epoch":E}
//	  -> 200 {"status":"ok"}. Feeds the quorum gate and the lag gauges.
//	  -> 409 {"error":"stale epoch ..."} when E is from a superseded
//	     generation: a stale-epoch ack never counts toward quorum.
//	GET  /v1/repl/status   -> JSON leader status (role, epoch, LSNs,
//	     followers, lag).
//
// Epoch fencing: every request and response carries the sender's
// leadership epoch. A leader that sees a HIGHER epoch in any request
// fences itself — it can never ack a write again (engine.Fence) — and a
// follower refuses frames stamped with a LOWER epoch than it knows
// (ErrStaleEpoch). Divergence is decided by (epoch, LSN): a stale-epoch
// follower whose from_lsn is past the promotion fold point holds frames
// acked nowhere, and is re-bootstrapped from the new leader's snapshot.
//
// A torn tail in a shipped batch (the connection died mid-frame) is
// indistinguishable from a torn local WAL tail and is handled the same
// way: the follower applies the intact prefix, acks it, and resumes from
// its own applied LSN on reconnect. Duplicates from resume overlap are
// idempotent skips in the engine.
package repl

import (
	"crypto/sha256"
	"crypto/subtle"
	"errors"
	"net/http"
)

// Route paths (mounted by the serving layer on the leader).
const (
	PathWAL      = "/v1/repl/wal"
	PathSnapshot = "/v1/repl/snapshot"
	PathAck      = "/v1/repl/ack"
	PathStatus   = "/v1/repl/status"
)

// Wire headers.
const (
	HeaderToken      = "X-Flock-Repl-Token"
	HeaderLastLSN    = "X-Flock-Repl-Last-LSN"
	HeaderDurableLSN = "X-Flock-Repl-Durable-LSN"
	HeaderSnapLSN    = "X-Flock-Repl-LSN"
	// HeaderEpoch carries the sender's leadership epoch on ship and
	// snapshot responses (and on error bodies' "epoch" field): the
	// follower-side fencing input.
	HeaderEpoch = "X-Flock-Repl-Epoch"
)

// Failpoint names (see internal/fault): armable via FLOCK_FAULTS on any
// binary that links this package.
const (
	// FaultShip tears a shipped batch on the leader: the response body is
	// cut mid-frame, exactly like a connection dying mid-transfer.
	FaultShip = "repl.ship"
	// FaultStream drops the follower's stream between two applied frames,
	// forcing a reconnect + resume-from-LSN.
	FaultStream = "repl.stream"
	// FaultPromote aborts a replica promotion at its entry point: the node
	// must remain a read-only follower, never a half-promoted leader.
	FaultPromote = "repl.promote"
	// FaultRepoint aborts a follower re-point at its entry point: the node
	// keeps (or resumes) tailing its previous leader.
	FaultRepoint = "repl.repoint"
	// FaultFence fires where a node reacts to observing a higher epoch —
	// arm it with latency to widen fence races in chaos schedules.
	FaultFence = "repl.fence"
)

// ErrQuorumTimeout is returned by the commit gate when a quorum of
// follower acks did not arrive in time. The write is locally durable and
// installed — this is an ambiguous commit, exactly like an ack lost on the
// wire — so clients must treat it like a timeout, not a clean failure.
var ErrQuorumTimeout = errors.New("repl: quorum ack timeout")

// ErrStaleLeader is returned by a follower that refused a ship stream from
// a superseded leadership generation: the node it is tailing has been
// deposed, and the follower must be repointed to the new leader.
var ErrStaleLeader = errors.New("repl: stale leader epoch (the node being tailed was deposed)")

// tokenOK compares a presented replication token against the configured
// one. An empty configured token disables the check (single-machine dev
// and test topologies). Hash-then-compare keeps the comparison constant
// time without leaking token length.
func tokenOK(want string, r *http.Request) bool {
	if want == "" {
		return true
	}
	wantSum := sha256.Sum256([]byte(want))
	gotSum := sha256.Sum256([]byte(r.Header.Get(HeaderToken)))
	return subtle.ConstantTimeCompare(wantSum[:], gotSum[:]) == 1
}
