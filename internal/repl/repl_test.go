package repl

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
)

func execOK(t *testing.T, db *engine.DB, q string) *engine.Result {
	t.Helper()
	res, err := db.Exec(q)
	if err != nil {
		t.Fatalf("%s: %v", q, err)
	}
	return res
}

// newLeaderNode opens a leader DB in its own dir and serves its replication
// endpoints from an httptest server.
func newLeaderNode(t *testing.T, opts Options) (*engine.DB, *Leader, *httptest.Server) {
	t.Helper()
	db, _, err := engine.OpenDirDB(t.TempDir(), false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.CloseDurability() })
	l := NewLeader(db, opts)
	mux := http.NewServeMux()
	l.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return db, l, srv
}

// newReplicaNode opens a replica-mode DB in dir (fresh when "").
func newReplicaNode(t *testing.T, dir, leaderURL string) *engine.DB {
	t.Helper()
	if dir == "" {
		dir = t.TempDir()
	}
	db, _, err := engine.OpenDirDB(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { db.CloseDurability() })
	db.SetReplicaMode(leaderURL)
	return db
}

// syncUntilCaughtUp drives SyncOnce until the replica reaches the leader's
// durable watermark (tolerating transient fault-injected rounds).
func syncUntilCaughtUp(t *testing.T, f *Follower, leader *engine.DB) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	var lastErr error
	for time.Now().Before(deadline) {
		lastErr = f.SyncOnce(context.Background())
		if f.db.AppliedLSN() >= leader.DurableLSN() && lastErr == nil {
			return
		}
	}
	t.Fatalf("replica never caught up: applied %d, leader durable %d, last err %v",
		f.db.AppliedLSN(), leader.DurableLSN(), lastErr)
}

// assertSameContents compares query results between leader and replica.
func assertSameContents(t *testing.T, leader, replica *engine.DB, queries ...string) {
	t.Helper()
	for _, q := range queries {
		lr := execOK(t, leader, q)
		rr := execOK(t, replica, q)
		if fmt.Sprint(lr.Rows) != fmt.Sprint(rr.Rows) {
			t.Fatalf("%s diverged:\n leader  %v\n replica %v", q, lr.Rows, rr.Rows)
		}
	}
}

// assertSameFrames compares the two logs frame-for-frame from the higher of
// the two horizons up to the replica's applied LSN. (The leader keeps
// moving on its own — every audited read appends a query-log frame — so
// the replica's position is the only stable comparison point.)
func assertSameFrames(t *testing.T, leader, replica *engine.DB) {
	t.Helper()
	from := leader.WALHorizon()
	if h := replica.WALHorizon(); h > from {
		from = h
	}
	upto := replica.AppliedLSN()
	collect := func(db *engine.DB) map[int64][]byte {
		out := map[int64][]byte{}
		cur := from
		for {
			last, durable, err := db.ReadWALSince(cur, 1<<30, func(lsn int64, p []byte) error {
				if lsn <= upto {
					out[lsn] = append([]byte(nil), p...)
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if last >= durable || last >= upto {
				return out
			}
			cur = last
		}
	}
	lf, rf := collect(leader), collect(replica)
	if len(lf) != len(rf) {
		t.Fatalf("frame count diverged: leader %d, replica %d (from %d)", len(lf), len(rf), from)
	}
	for lsn, p := range lf {
		if !bytes.Equal(p, rf[lsn]) {
			t.Fatalf("frame %d differs between leader and replica", lsn)
		}
	}
}

func TestReplicationEndToEnd(t *testing.T) {
	ldb, l, srv := newLeaderNode(t, Options{})
	execOK(t, ldb, "CREATE TABLE kv (id int, v int)")
	for i := 0; i < 25; i++ {
		execOK(t, ldb, fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", i, i*3))
	}
	rdb := newReplicaNode(t, "", srv.URL)
	f := NewFollower(rdb, srv.URL, FollowerOptions{ID: "r1", PollWait: 50 * time.Millisecond})
	syncUntilCaughtUp(t, f, ldb)
	assertSameContents(t, ldb, rdb, "SELECT count(*) FROM kv", "SELECT sum(v) FROM kv")
	assertSameFrames(t, ldb, rdb)

	// New writes after the initial catch-up ship incrementally.
	execOK(t, ldb, "UPDATE kv SET v = v + 1 WHERE id < 10")
	execOK(t, ldb, "DELETE FROM kv WHERE id = 24")
	syncUntilCaughtUp(t, f, ldb)
	durableAtSync := ldb.DurableLSN()

	// The leader saw the follower and its ack. (Compare against the
	// watermark captured at sync time — the leader's own audited reads keep
	// appending query-log frames.)
	st := l.CurrentStatus()
	if len(st.Followers) != 1 || st.Followers[0].ID != "r1" {
		t.Fatalf("leader followers: %+v", st.Followers)
	}
	if st.Followers[0].AckLSN < durableAtSync {
		t.Fatalf("follower ack %d, leader durable at sync %d", st.Followers[0].AckLSN, durableAtSync)
	}
	assertSameContents(t, ldb, rdb, "SELECT count(*) FROM kv", "SELECT sum(v) FROM kv")
	// Writes on the replica are rejected.
	if _, err := rdb.Exec("INSERT INTO kv VALUES (999, 0)"); !errors.Is(err, engine.ErrReadOnly) {
		t.Fatalf("replica write: got %v, want ErrReadOnly", err)
	}
}

func TestReplicationTokenAuth(t *testing.T) {
	ldb, _, srv := newLeaderNode(t, Options{Token: "s3cret"})
	execOK(t, ldb, "CREATE TABLE kv (id int)")

	bad := NewFollower(newReplicaNode(t, "", srv.URL), srv.URL, FollowerOptions{ID: "bad", PollWait: time.Millisecond})
	if err := bad.SyncOnce(context.Background()); err == nil || !strings.Contains(err.Error(), "token") {
		t.Fatalf("tokenless sync: got %v, want auth failure", err)
	}
	good := NewFollower(newReplicaNode(t, "", srv.URL), srv.URL, FollowerOptions{ID: "good", Token: "s3cret", PollWait: time.Millisecond})
	if err := good.SyncOnce(context.Background()); err != nil {
		t.Fatalf("authed sync: %v", err)
	}
}

// TestReplicationResumeAfterTornShip tears a shipped batch mid-frame on the
// leader side (the wire analogue of a torn WAL tail): the follower applies
// the intact prefix and the next round resumes from its applied LSN; the
// final state matches frame-for-frame.
func TestReplicationResumeAfterTornShip(t *testing.T) {
	defer fault.Reset()
	ldb, l, srv := newLeaderNode(t, Options{})
	execOK(t, ldb, "CREATE TABLE kv (id int)")
	for i := 0; i < 30; i++ {
		execOK(t, ldb, fmt.Sprintf("INSERT INTO kv VALUES (%d)", i))
	}
	fault.Enable(FaultShip, fault.Spec{Count: 1})
	rdb := newReplicaNode(t, "", srv.URL)
	f := NewFollower(rdb, srv.URL, FollowerOptions{ID: "torn", PollWait: 10 * time.Millisecond})
	syncUntilCaughtUp(t, f, ldb)

	if fault.Triggered(FaultShip) != 1 {
		t.Fatalf("ship failpoint fired %d times, want 1", fault.Triggered(FaultShip))
	}
	if got := l.Gauges()["flock_repl_ship_torn_total"]; got != 1 {
		t.Fatalf("torn batches gauge %v, want 1", got)
	}
	assertSameContents(t, ldb, rdb, "SELECT count(*) FROM kv", "SELECT sum(id) FROM kv")
	assertSameFrames(t, ldb, rdb)
}

// TestReplicationReconnectAfterStreamDrop kills the apply stream mid-batch
// on the follower side: the round fails, the durable prefix is still acked,
// and the next round resumes from the applied LSN without gaps or
// duplicates.
func TestReplicationReconnectAfterStreamDrop(t *testing.T) {
	defer fault.Reset()
	ldb, _, srv := newLeaderNode(t, Options{})
	execOK(t, ldb, "CREATE TABLE kv (id int)")
	for i := 0; i < 30; i++ {
		execOK(t, ldb, fmt.Sprintf("INSERT INTO kv VALUES (%d)", i))
	}
	fault.Enable(FaultStream, fault.Spec{After: 5, Count: 1})
	rdb := newReplicaNode(t, "", srv.URL)
	f := NewFollower(rdb, srv.URL, FollowerOptions{ID: "drop", PollWait: 10 * time.Millisecond})

	err := f.SyncOnce(context.Background())
	if err == nil || !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("first sync: got %v, want injected stream drop", err)
	}
	prefix := rdb.AppliedLSN()
	if prefix == 0 {
		t.Fatal("no prefix applied before the drop")
	}
	syncUntilCaughtUp(t, f, ldb)
	if rdb.AppliedLSN() <= prefix {
		t.Fatalf("resume did not advance past prefix %d", prefix)
	}
	assertSameContents(t, ldb, rdb, "SELECT count(*) FROM kv", "SELECT sum(id) FROM kv")
	assertSameFrames(t, ldb, rdb)
}

// TestReplicationSnapshotBootstrap starts a replica after the leader has
// checkpointed away the log prefix: the 409 from /v1/repl/wal routes the
// follower through the snapshot bootstrap, then shipping continues.
func TestReplicationSnapshotBootstrap(t *testing.T) {
	ldb, l, srv := newLeaderNode(t, Options{})
	execOK(t, ldb, "CREATE TABLE kv (id int)")
	for i := 0; i < 12; i++ {
		execOK(t, ldb, fmt.Sprintf("INSERT INTO kv VALUES (%d)", i))
	}
	if err := ldb.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 12; i < 18; i++ {
		execOK(t, ldb, fmt.Sprintf("INSERT INTO kv VALUES (%d)", i))
	}
	rdb := newReplicaNode(t, "", srv.URL)
	f := NewFollower(rdb, srv.URL, FollowerOptions{ID: "boot", PollWait: 10 * time.Millisecond})
	syncUntilCaughtUp(t, f, ldb)
	if got := f.Gauges()["flock_repl_bootstraps_total"]; got != 1 {
		t.Fatalf("bootstraps gauge %v, want 1", got)
	}
	if got := l.Gauges()["flock_repl_snapshots_total"]; got != 1 {
		t.Fatalf("leader snapshots gauge %v, want 1", got)
	}
	assertSameContents(t, ldb, rdb, "SELECT count(*) FROM kv", "SELECT sum(id) FROM kv")
}

// TestQuorumGate wires the leader's gate into the engine commit path: with
// quorum=1 and no follower, writes fail ambiguous after the ack timeout
// (but stay locally durable); with a live follower, writes block until the
// ack arrives and then succeed.
func TestQuorumGate(t *testing.T) {
	ldb, l, srv := newLeaderNode(t, Options{Quorum: 1, AckTimeout: 200 * time.Millisecond})
	execOK(t, ldb, "CREATE TABLE kv (id int)") // before the gate: no follower yet
	ldb.SetCommitGate(l.Gate)

	_, err := ldb.Exec("INSERT INTO kv VALUES (1)")
	if !errors.Is(err, ErrQuorumTimeout) {
		t.Fatalf("no-follower insert: got %v, want ErrQuorumTimeout", err)
	}
	// The ambiguous write is locally durable: it ships once a follower
	// appears, exactly like a client retry would observe.
	rdb := newReplicaNode(t, "", srv.URL)
	f := NewFollower(rdb, srv.URL, FollowerOptions{ID: "q1", PollWait: 20 * time.Millisecond})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan struct{})
	go func() { defer close(done); f.Run(ctx) }()
	defer func() { cancel(); <-done }()

	// With the follower tailing, a gated write completes.
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err = ldb.Exec("INSERT INTO kv VALUES (2)")
		if err == nil {
			break
		}
		if !errors.Is(err, ErrQuorumTimeout) || !time.Now().Before(deadline) {
			t.Fatalf("gated insert with live follower: %v", err)
		}
	}
	st := l.CurrentStatus()
	if st.AckPolicy != "quorum" || st.QuorumLSN < ldb.DurableLSN() {
		t.Fatalf("status after quorum commit: %+v (durable %d)", st, ldb.DurableLSN())
	}
}

// TestFollowerCrashRecovery abandons a mid-replication follower without any
// shutdown (the in-process stand-in for SIGKILL: the WAL is simply never
// closed), reopens its directory, and verifies recovery lands exactly on
// the acked prefix with every row exactly once — then replication resumes
// from there.
func TestFollowerCrashRecovery(t *testing.T) {
	ldb, _, srv := newLeaderNode(t, Options{})
	execOK(t, ldb, "CREATE TABLE kv (id int)")
	for i := 0; i < 20; i++ {
		execOK(t, ldb, fmt.Sprintf("INSERT INTO kv VALUES (%d)", i))
	}

	dir := t.TempDir()
	crashDB, _, err := engine.OpenDirDB(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	crashDB.SetReplicaMode(srv.URL)
	f := NewFollower(crashDB, srv.URL, FollowerOptions{ID: "crash", PollWait: 10 * time.Millisecond})
	if err := f.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	applied := crashDB.AppliedLSN()
	if applied == 0 {
		t.Fatal("nothing applied before the crash")
	}
	// Crash: abandon crashDB without Close. Its frames were fsynced by the
	// batch SyncWALTo, so recovery must see all of them.
	rdb, info, err := engine.OpenDirDB(dir, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { rdb.CloseDurability() })
	rdb.SetReplicaMode(srv.URL)
	if info.LSN != applied {
		t.Fatalf("recovered replica at LSN %d, want acked prefix %d", info.LSN, applied)
	}
	res := execOK(t, rdb, "SELECT count(*) FROM kv")
	if got := res.Rows[0][0].(int64); got != 20 {
		t.Fatalf("recovered %d rows, want 20 (exactly once)", got)
	}

	// More leader writes; a fresh follower over the recovered dir resumes
	// from the recovered LSN, no bootstrap, no re-apply.
	for i := 20; i < 25; i++ {
		execOK(t, ldb, fmt.Sprintf("INSERT INTO kv VALUES (%d)", i))
	}
	f2 := NewFollower(rdb, srv.URL, FollowerOptions{ID: "crash", PollWait: 10 * time.Millisecond})
	syncUntilCaughtUp(t, f2, ldb)
	if got := f2.Gauges()["flock_repl_bootstraps_total"]; got != 0 {
		t.Fatalf("recovery path bootstrapped %v times, want 0", got)
	}
	assertSameContents(t, ldb, rdb, "SELECT count(*) FROM kv", "SELECT sum(id) FROM kv")
	assertSameFrames(t, ldb, rdb)
}
