package repl

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
)

// newNodeServer mounts a Node's endpoints on an httptest server.
func newNodeServer(t *testing.T, n *Node) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	n.Register(mux)
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	return srv
}

func countOfID(t *testing.T, db *engine.DB, id int) int64 {
	t.Helper()
	res := execOK(t, db, fmt.Sprintf("SELECT count(*) FROM kv WHERE id = %d", id))
	return res.Rows[0][0].(int64)
}

// TestFailoverKillLeaderPromote is the PR's core safety claim: kill the
// leader mid-workload (abandoned without shutdown, listener closed),
// promote the quorum-acked follower, and every write that was acked to a
// client survives exactly once on the new leader. The restarted old leader
// comes back fenced and rejoins the new lineage via repoint.
func TestFailoverKillLeaderPromote(t *testing.T) {
	ldir := t.TempDir()
	ldb, _, err := engine.OpenDirDB(ldir, false)
	if err != nil {
		t.Fatal(err)
	}
	// No cleanup close: the leader "dies" by abandonment (SIGKILL stand-in).
	execOK(t, ldb, "CREATE TABLE kv (id int)") // before the quorum gate exists
	lnode := NewLeaderNode(ldb, NodeOptions{Leader: Options{Quorum: 1, AckTimeout: 10 * time.Second}})
	lsrv := newNodeServer(t, lnode)

	rdb := newReplicaNode(t, "", lsrv.URL)
	fnode := NewFollowerNode(rdb, lsrv.URL, NodeOptions{
		Follower: FollowerOptions{ID: "f1", PollWait: 20 * time.Millisecond},
	})
	fsrv := newNodeServer(t, fnode)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runDone := make(chan struct{})
	go func() { defer close(runDone); _ = fnode.Run(ctx) }()
	defer func() { cancel(); <-runDone }()

	// Concurrent writers: an id is "acked" only when its Exec returned nil,
	// which under quorum=1 means the follower applied and fsynced it.
	var mu sync.Mutex
	acked := map[int]bool{}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w * 100; i < w*100+25; i++ {
				if _, err := ldb.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d)", i)); err == nil {
					mu.Lock()
					acked[i] = true
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	if len(acked) == 0 {
		t.Fatal("no write was acked before the crash")
	}

	// Kill the leader: close its listener, never close its DB.
	lsrv.Close()

	epoch, err := fnode.Promote(ctx)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if epoch != 2 {
		t.Fatalf("promoted epoch %d, want 2", epoch)
	}
	if got := fnode.Role(); got != "leader" {
		t.Fatalf("promoted role %q, want leader", got)
	}
	if rdb.Epoch() != 2 || rdb.IsReplica() {
		t.Fatalf("promoted db: epoch %d, replica=%v", rdb.Epoch(), rdb.IsReplica())
	}
	// Idempotent re-promote.
	if again, err := fnode.Promote(ctx); err != nil || again != 2 {
		t.Fatalf("re-promote: epoch %d, err %v", again, err)
	}

	// Every acked write survives exactly once; the write gate is open.
	for id := range acked {
		if n := countOfID(t, rdb, id); n != 1 {
			t.Fatalf("acked id %d present %d times after promotion, want exactly 1", id, n)
		}
	}
	execOK(t, rdb, "INSERT INTO kv VALUES (9999)")

	// Restart the old leader from its directory: it still believes epoch 1.
	odb, _, err := engine.OpenDirDB(ldir, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { odb.CloseDurability() })
	if odb.Epoch() != 1 {
		t.Fatalf("restarted old leader epoch %d, want 1", odb.Epoch())
	}
	onode := NewLeaderNode(odb, NodeOptions{})

	// The boot peer probe sees the promoted node's higher epoch: the old
	// leader comes back fenced and can never ack a write again.
	onode.ProbePeers(ctx, []string{fsrv.URL})
	if fenced, observed, _ := odb.Fenced(); !fenced || observed != 2 {
		t.Fatalf("old leader after probe: fenced=%v observed=%d, want fenced at 2", fenced, observed)
	}
	if onode.Role() != "fenced" {
		t.Fatalf("old leader role %q, want fenced", onode.Role())
	}
	if _, err := odb.Exec("INSERT INTO kv VALUES (-1)"); !errors.Is(err, engine.ErrFenced) {
		t.Fatalf("fenced write: got %v, want ErrFenced", err)
	}
	if err := odb.ReopenWAL(); !errors.Is(err, engine.ErrFenced) {
		t.Fatalf("fenced reopen: got %v, want ErrFenced (fencing is terminal)", err)
	}
	// Repoint the fenced ex-leader at the new leader: it demotes, adopts the
	// new lineage, and converges.
	if err := onode.Repoint(ctx, fsrv.URL); err != nil {
		t.Fatalf("repoint: %v", err)
	}
	if onode.Role() != "replica" {
		t.Fatalf("repointed role %q, want replica", onode.Role())
	}
	syncUntilCaughtUp(t, onode.Follower(), rdb)
	if odb.Epoch() != 2 {
		t.Fatalf("repointed old leader epoch %d, want 2 (adopted in-band)", odb.Epoch())
	}
	assertSameContents(t, rdb, odb, "SELECT count(*) FROM kv", "SELECT sum(id) FROM kv")
}

// TestFailoverDivergedTailDiscarded promotes a follower while the old
// leader holds an unreplicated (acked-nowhere under the new epoch) tail:
// the rejoining old leader is detected as diverged by the (epoch, LSN)
// comparison, re-bootstraps from the new leader's snapshot, and the
// divergent rows are gone.
func TestFailoverDivergedTailDiscarded(t *testing.T) {
	ldir := t.TempDir()
	ldb, _, err := engine.OpenDirDB(ldir, false)
	if err != nil {
		t.Fatal(err)
	}
	execOK(t, ldb, "CREATE TABLE kv (id int)")
	lnode := NewLeaderNode(ldb, NodeOptions{}) // async acks: a tail can be local-only
	lsrv := newNodeServer(t, lnode)
	for i := 0; i < 10; i++ {
		execOK(t, ldb, fmt.Sprintf("INSERT INTO kv VALUES (%d)", i))
	}

	rdb := newReplicaNode(t, "", lsrv.URL)
	fnode := NewFollowerNode(rdb, lsrv.URL, NodeOptions{
		Follower: FollowerOptions{ID: "f1", PollWait: 20 * time.Millisecond},
	})
	fsrv := newNodeServer(t, fnode)
	syncUntilCaughtUp(t, fnode.Follower(), ldb)

	// The divergent tail: locally acked on the old leader, never shipped.
	execOK(t, ldb, "INSERT INTO kv VALUES (1000)")
	execOK(t, ldb, "INSERT INTO kv VALUES (1001)")
	lsrv.Close() // old leader "dies" with the tail
	ctx := context.Background()
	if _, err := fnode.Promote(ctx); err != nil {
		t.Fatalf("promote: %v", err)
	}

	// The old leader restarts with its tail intact and rejoins.
	odb, _, err := engine.OpenDirDB(ldir, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { odb.CloseDurability() })
	if n := countOfID(t, odb, 1000); n != 1 {
		t.Fatalf("restarted old leader lost its own tail row: count %d", n)
	}
	onode := NewLeaderNode(odb, NodeOptions{})
	if err := onode.Repoint(ctx, fsrv.URL); err != nil {
		t.Fatalf("repoint: %v", err)
	}
	f := onode.Follower()
	// The first round draws the diverged 409 and routes through bootstrap.
	syncUntilCaughtUp(t, f, rdb)
	if got := f.Gauges()["flock_repl_bootstraps_total"]; got != 1 {
		t.Fatalf("diverged rejoin bootstrapped %v times, want 1", got)
	}
	if n := countOfID(t, odb, 1000); n != 0 {
		t.Fatalf("divergent row survived the rejoin: count %d, want 0", n)
	}
	if odb.Epoch() != 2 {
		t.Fatalf("rejoined epoch %d, want 2", odb.Epoch())
	}
	assertSameContents(t, rdb, odb, "SELECT count(*) FROM kv", "SELECT sum(id) FROM kv")
}

// TestEpochFencingOnAcks exercises the ack-side epoch gate directly on the
// wire: a higher-epoch ack fences the leader; a stale-epoch ack is
// rejected with 409 and never counts toward quorum.
func TestEpochFencingOnAcks(t *testing.T) {
	ldb, _, srv := newLeaderNode(t, Options{})
	execOK(t, ldb, "CREATE TABLE kv (id int)")

	postAck := func(body map[string]any) *http.Response {
		t.Helper()
		buf, _ := json.Marshal(body)
		resp, err := http.Post(srv.URL+PathAck, "application/json", bytes.NewReader(buf))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	// Ack from the future: the leader is deposed on the spot.
	resp := postAck(map[string]any{"follower": "new-gen", "applied_lsn": int64(1), "epoch": int64(7)})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("higher-epoch ack: HTTP %d, want 503", resp.StatusCode)
	}
	if fenced, observed, _ := ldb.Fenced(); !fenced || observed != 7 {
		t.Fatalf("leader after higher-epoch ack: fenced=%v observed=%d", fenced, observed)
	}
	if _, err := ldb.Exec("INSERT INTO kv VALUES (1)"); !errors.Is(err, engine.ErrFenced) {
		t.Fatalf("post-fence write: got %v, want ErrFenced", err)
	}
	// A fenced leader refuses to ship and to serve bootstrap images.
	wreq, _ := json.Marshal(walRequest{FromLSN: 0, Follower: "f"})
	wresp, err := http.Post(srv.URL+PathWAL, "application/json", bytes.NewReader(wreq))
	if err != nil {
		t.Fatal(err)
	}
	defer wresp.Body.Close()
	if wresp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("fenced ship: HTTP %d, want 503", wresp.StatusCode)
	}

	// Stale acks on a healthy higher-epoch leader: rejected, not recorded.
	l2db, l2, srv2 := newLeaderNode(t, Options{})
	execOK(t, l2db, "CREATE TABLE kv (id int)")
	l2db.DemoteToReplica("nowhere")
	l2db.Fence(4, "test setup")                       // observe epoch 4 while a replica...
	if _, err := l2db.PromoteToLeader(); err != nil { // ...and take epoch 5
		t.Fatal(err)
	}
	if l2db.Epoch() != 5 {
		t.Fatalf("setup epoch %d, want 5", l2db.Epoch())
	}
	buf, _ := json.Marshal(map[string]any{"follower": "old-gen", "applied_lsn": int64(99), "epoch": int64(1)})
	resp2, err := http.Post(srv2.URL+PathAck, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("stale-epoch ack: HTTP %d, want 409", resp2.StatusCode)
	}
	for _, f := range l2.CurrentStatus().Followers {
		if f.ID == "old-gen" && f.AckLSN > 0 {
			t.Fatalf("stale ack counted toward quorum: %+v", f)
		}
	}
}

// TestFollowerRejectsStaleLeader gives the follower a higher epoch than
// the node it tails. An honest leader fences itself on the request's epoch
// stamp before replying, so the follower-side header gate is exercised with
// a fake leader that answers 200 with a stale epoch header: the response
// must be rejected before any frame is applied.
func TestFollowerRejectsStaleLeader(t *testing.T) {
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(HeaderEpoch, "1")
		w.Header().Set(HeaderLastLSN, "999")
		w.WriteHeader(http.StatusOK)
		// A frame the follower must never apply.
		_, _ = w.Write([]byte{0xde, 0xad, 0xbe, 0xef})
	}))
	t.Cleanup(fake.Close)

	rdb := newReplicaNode(t, "", fake.URL)
	rdb.Fence(3, "test: a newer lineage exists")
	if _, err := rdb.PromoteToLeader(); err != nil { // consumes the fence: epoch 4
		t.Fatal(err)
	}
	rdb.DemoteToReplica(fake.URL)
	if rdb.Epoch() != 4 {
		t.Fatalf("follower epoch %d, want 4", rdb.Epoch())
	}

	f := NewFollower(rdb, fake.URL, FollowerOptions{ID: "future", PollWait: 10 * time.Millisecond})
	before := rdb.AppliedLSN()
	err := f.SyncOnce(context.Background())
	if !errors.Is(err, ErrStaleLeader) {
		t.Fatalf("sync against deposed leader: got %v, want ErrStaleLeader", err)
	}
	if rdb.AppliedLSN() != before {
		t.Fatal("stale leader's frames were applied despite the epoch gate")
	}
}

// TestPromoteChaos drives the promotion failpoints: an aborted promotion
// (at the repl.promote entry, or mid-fold via an engine snapshot fault)
// leaves the node a read-only follower that still replicates — never a
// half-promoted leader — and the invariant "at most one writable node"
// holds at every step. A cold reopen after the failed attempt recovers the
// old follower state; a later clean promotion succeeds.
func TestPromoteChaos(t *testing.T) {
	defer fault.Reset()
	ldb, _, srv := newLeaderNode(t, Options{})
	execOK(t, ldb, "CREATE TABLE kv (id int)")
	for i := 0; i < 8; i++ {
		execOK(t, ldb, fmt.Sprintf("INSERT INTO kv VALUES (%d)", i))
	}
	rdir := t.TempDir()
	rdb := newReplicaNode(t, rdir, srv.URL)
	fnode := NewFollowerNode(rdb, srv.URL, NodeOptions{
		Follower: FollowerOptions{ID: "chaos", PollWait: 10 * time.Millisecond},
	})
	syncUntilCaughtUp(t, fnode.Follower(), ldb)
	ctx := context.Background()

	assertFollowerStillWorks := func(step string) {
		t.Helper()
		if fnode.Role() != "replica" {
			t.Fatalf("%s: role %q, want replica", step, fnode.Role())
		}
		if _, err := rdb.Exec("INSERT INTO kv VALUES (-1)"); !errors.Is(err, engine.ErrReadOnly) {
			t.Fatalf("%s: replica write got %v, want ErrReadOnly (one writable node max)", step, err)
		}
		execOK(t, ldb, "INSERT INTO kv VALUES (100)")
		syncUntilCaughtUp(t, fnode.Follower(), ldb)
	}

	// Schedule 1: promotion aborted at its entry failpoint.
	fault.Enable(FaultPromote, fault.Spec{Count: 1})
	if _, err := fnode.Promote(ctx); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("aborted promote: got %v, want injected", err)
	}
	assertFollowerStillWorks("after entry abort")

	// Schedule 2: the epoch-stamped snapshot fold fails mid-promotion.
	fault.Enable("snapshot.write", fault.Spec{Count: 1})
	if _, err := fnode.Promote(ctx); err == nil {
		t.Fatal("promote with failing snapshot fold unexpectedly succeeded")
	}
	fault.Disable("snapshot.write")
	assertFollowerStillWorks("after mid-fold failure")

	// Crash after the failed attempts: recovery lands on follower state.
	applied := rdb.AppliedLSN()
	reopened, info, err := engine.OpenDirDB(rdir, false) // rdb abandoned = crash
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { reopened.CloseDurability() })
	if info.LSN != applied || reopened.Epoch() != 1 {
		t.Fatalf("post-crash recovery: LSN %d (want %d), epoch %d (want 1)",
			info.LSN, applied, reopened.Epoch())
	}
	reopened.SetReplicaMode(srv.URL)

	// Clean promotion on the recovered node succeeds; its epoch survives a
	// further crash-and-reopen.
	n2 := NewFollowerNode(reopened, srv.URL, NodeOptions{
		Follower: FollowerOptions{ID: "chaos", PollWait: 10 * time.Millisecond},
	})
	syncUntilCaughtUp(t, n2.Follower(), ldb)
	if _, err := n2.Promote(ctx); err != nil {
		t.Fatalf("clean promote after chaos: %v", err)
	}
	execOK(t, reopened, "INSERT INTO kv VALUES (200)")
	final, info2, err := engine.OpenDirDB(rdir, false)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { final.CloseDurability() })
	if final.Epoch() != 2 {
		t.Fatalf("promoted epoch lost in crash: %d, want 2 (info %+v)", final.Epoch(), info2)
	}
	if n := countOfID(t, final, 200); n != 1 {
		t.Fatalf("post-promotion write present %d times after crash, want 1", n)
	}
}

// TestFenceRaceSchedule widens the fence window with the repl.fence
// latency failpoint while writers hammer the old leader and a new-epoch
// ship request lands: whatever interleaving occurs, the end state is at
// most one writable node and the old leader is fenced.
func TestFenceRaceSchedule(t *testing.T) {
	defer fault.Reset()
	ldb, _, srv := newLeaderNode(t, Options{})
	execOK(t, ldb, "CREATE TABLE kv (id int)")
	fault.Enable(FaultFence, fault.Spec{Latency: 30 * time.Millisecond})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // writers racing the fence
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			_, _ = ldb.Exec(fmt.Sprintf("INSERT INTO kv VALUES (%d)", i))
		}
	}()
	// Concurrent higher-epoch ship requests (a repointed follower of the
	// new leader probing the old one).
	var reqWG sync.WaitGroup
	for i := 0; i < 4; i++ {
		reqWG.Add(1)
		go func() {
			defer reqWG.Done()
			body, _ := json.Marshal(walRequest{FromLSN: 0, Follower: "newgen", Epoch: 2})
			resp, err := http.Post(srv.URL+PathWAL, "application/json", bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}
	reqWG.Wait()
	close(stop)
	wg.Wait()

	if fenced, observed, _ := ldb.Fenced(); !fenced || observed != 2 {
		t.Fatalf("old leader not fenced after race: fenced=%v observed=%d", fenced, observed)
	}
	if _, err := ldb.Exec("INSERT INTO kv VALUES (-1)"); !errors.Is(err, engine.ErrFenced) {
		t.Fatalf("end state: write got %v, want ErrFenced (at most one writable node)", err)
	}
	if fault.Triggered(FaultFence) == 0 {
		t.Fatal("fence failpoint never fired")
	}
}

// TestNodeDispatchNotLeader verifies the role-aware endpoint dispatch: a
// replica answering leader endpoints returns 503 with an X-Flock-Leader
// hint instead of shipping anything.
func TestNodeDispatchNotLeader(t *testing.T) {
	ldb, _, lsrv := newLeaderNode(t, Options{})
	execOK(t, ldb, "CREATE TABLE kv (id int)")
	rdb := newReplicaNode(t, "", lsrv.URL)
	fnode := NewFollowerNode(rdb, lsrv.URL, NodeOptions{Follower: FollowerOptions{ID: "d"}})
	fsrv := newNodeServer(t, fnode)

	body, _ := json.Marshal(walRequest{FromLSN: 0, Follower: "x"})
	resp, err := http.Post(fsrv.URL+PathWAL, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("ship from a replica: HTTP %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Flock-Leader"); got != lsrv.URL {
		t.Fatalf("leader hint %q, want %q", got, lsrv.URL)
	}
	// Status serves the replica report.
	sresp, err := http.Get(fsrv.URL + PathStatus)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var st ReplicaStatus
	if err := json.NewDecoder(sresp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Role != "replica" || st.Epoch != 1 {
		t.Fatalf("replica status: %+v", st)
	}
}
