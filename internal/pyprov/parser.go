package pyprov

import (
	"fmt"
	"strings"
)

// The analyzer works line-by-line over a practical subset of Python:
// imports, (possibly tuple-)assignments whose right-hand side is an
// expression, and bare call statements. Expressions cover names, dotted
// attributes, calls with positional/keyword arguments, subscripts, string
// and numeric literals, lists and tuples — the shapes that dominate real
// data-science scripts.

// pyExpr is a parsed Python expression.
type pyExpr interface{ py() }

// pyName is an identifier.
type pyName struct{ Name string }

// pyAttr is base.attr.
type pyAttr struct {
	Base pyExpr
	Attr string
}

// pyCall is fn(args..., kw=...).
type pyCall struct {
	Fn     pyExpr
	Args   []pyExpr
	Kwargs map[string]pyExpr
}

// pyStr is a string literal.
type pyStr struct{ Val string }

// pyNum is a numeric literal (kept as source text).
type pyNum struct{ Val string }

// pySub is base[index...].
type pySub struct {
	Base  pyExpr
	Index []pyExpr
}

// pyList is [items...] or (items...).
type pyList struct{ Items []pyExpr }

func (*pyName) py() {}
func (*pyAttr) py() {}
func (*pyCall) py() {}
func (*pyStr) py()  {}
func (*pyNum) py()  {}
func (*pySub) py()  {}
func (*pyList) py() {}

type pyToken struct {
	kind string // name, str, num, op
	text string
}

func pyLex(line string) ([]pyToken, error) {
	var toks []pyToken
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '#':
			i = len(line)
		case c == '\'' || c == '"':
			quote := c
			j := i + 1
			var sb strings.Builder
			for j < len(line) && line[j] != quote {
				if line[j] == '\\' && j+1 < len(line) {
					sb.WriteByte(line[j+1])
					j += 2
					continue
				}
				sb.WriteByte(line[j])
				j++
			}
			if j >= len(line) {
				return nil, fmt.Errorf("pyprov: unterminated string")
			}
			toks = append(toks, pyToken{"str", sb.String()})
			i = j + 1
		case c >= '0' && c <= '9':
			j := i
			for j < len(line) && (line[j] >= '0' && line[j] <= '9' || line[j] == '.' || line[j] == 'e' || line[j] == '_') {
				j++
			}
			toks = append(toks, pyToken{"num", line[i:j]})
			i = j
		case c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z'):
			j := i
			for j < len(line) && (line[j] == '_' || line[j] >= 'a' && line[j] <= 'z' ||
				line[j] >= 'A' && line[j] <= 'Z' || line[j] >= '0' && line[j] <= '9') {
				j++
			}
			toks = append(toks, pyToken{"name", line[i:j]})
			i = j
		default:
			switch c {
			case '(', ')', '[', ']', ',', '.', '=', '+', '-', '*', '/', ':', '{', '}', '%', '<', '>', '!', '&', '|':
				toks = append(toks, pyToken{"op", string(c)})
				i++
			default:
				return nil, fmt.Errorf("pyprov: unexpected character %q", c)
			}
		}
	}
	return toks, nil
}

type pyParser struct {
	toks []pyToken
	pos  int
}

func (p *pyParser) peek() pyToken {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return pyToken{kind: "eof"}
}

func (p *pyParser) next() pyToken { t := p.peek(); p.pos++; return t }

func (p *pyParser) acceptOp(op string) bool {
	if t := p.peek(); t.kind == "op" && t.text == op {
		p.pos++
		return true
	}
	return false
}

// parseExpr parses a primary expression with postfix attribute, call and
// subscript chains. Binary arithmetic degrades gracefully: "a + b" parses
// as a with the rest ignored for provenance purposes — the analyzer only
// needs roots, so we instead record both sides via parseExprList at
// assignment level. Here we parse one operand.
func (p *pyParser) parseExpr() (pyExpr, error) {
	var base pyExpr
	t := p.next()
	switch t.kind {
	case "name":
		base = &pyName{Name: t.text}
	case "str":
		base = &pyStr{Val: t.text}
	case "num":
		base = &pyNum{Val: t.text}
	case "op":
		switch t.text {
		case "[", "(":
			closing := "]"
			if t.text == "(" {
				closing = ")"
			}
			lst := &pyList{}
			for !p.acceptOp(closing) {
				if p.peek().kind == "eof" {
					return nil, fmt.Errorf("pyprov: unterminated list")
				}
				item, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				lst.Items = append(lst.Items, item)
				p.acceptOp(",")
			}
			base = lst
		case "-":
			return p.parseExpr() // unary minus: keep operand
		default:
			return nil, fmt.Errorf("pyprov: unexpected operator %q", t.text)
		}
	default:
		return nil, fmt.Errorf("pyprov: unexpected token")
	}
	// Postfix chain.
	for {
		switch {
		case p.acceptOp("."):
			nt := p.next()
			if nt.kind != "name" {
				return nil, fmt.Errorf("pyprov: expected attribute name")
			}
			base = &pyAttr{Base: base, Attr: nt.text}
		case p.acceptOp("("):
			call := &pyCall{Fn: base, Kwargs: map[string]pyExpr{}}
			for !p.acceptOp(")") {
				if p.peek().kind == "eof" {
					return nil, fmt.Errorf("pyprov: unterminated call")
				}
				// kwarg?
				if p.peek().kind == "name" && p.pos+1 < len(p.toks) &&
					p.toks[p.pos+1].kind == "op" && p.toks[p.pos+1].text == "=" {
					key := p.next().text
					p.next() // '='
					val, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Kwargs[key] = val
				} else {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, arg)
				}
				p.acceptOp(",")
			}
			base = call
		case p.acceptOp("["):
			sub := &pySub{Base: base}
			for !p.acceptOp("]") {
				if p.peek().kind == "eof" {
					return nil, fmt.Errorf("pyprov: unterminated subscript")
				}
				idx, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				sub.Index = append(sub.Index, idx)
				p.acceptOp(",")
				p.acceptOp(":")
			}
			base = sub
		default:
			return base, nil
		}
	}
}

// parsePyExpr parses a full right-hand side, tolerating trailing binary
// operators by parsing and collecting each operand.
func parsePyExpr(src string) ([]pyExpr, error) {
	toks, err := pyLex(src)
	if err != nil {
		return nil, err
	}
	p := &pyParser{toks: toks}
	var out []pyExpr
	for p.peek().kind != "eof" {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
		// Skip a single binary operator between operands, if any.
		if t := p.peek(); t.kind == "op" {
			p.pos++
			continue
		}
		break
	}
	return out, nil
}

// dottedName flattens name/attr chains ("pd.read_sql" -> "pd.read_sql");
// returns "" for non-name shapes.
func dottedName(e pyExpr) string {
	switch x := e.(type) {
	case *pyName:
		return x.Name
	case *pyAttr:
		base := dottedName(x.Base)
		if base == "" {
			return ""
		}
		return base + "." + x.Attr
	}
	return ""
}

// rootName returns the leftmost identifier of an expression ("df" for
// df.dropna().head()), or "".
func rootName(e pyExpr) string {
	switch x := e.(type) {
	case *pyName:
		return x.Name
	case *pyAttr:
		return rootName(x.Base)
	case *pyCall:
		return rootName(x.Fn)
	case *pySub:
		return rootName(x.Base)
	}
	return ""
}

// stringsIn collects string literals in an expression tree.
func stringsIn(e pyExpr) []string {
	var out []string
	var walk func(pyExpr)
	walk = func(x pyExpr) {
		switch v := x.(type) {
		case *pyStr:
			out = append(out, v.Val)
		case *pyAttr:
			walk(v.Base)
		case *pyCall:
			walk(v.Fn)
			for _, a := range v.Args {
				walk(a)
			}
			for _, a := range v.Kwargs {
				walk(a)
			}
		case *pySub:
			walk(v.Base)
			for _, a := range v.Index {
				walk(a)
			}
		case *pyList:
			for _, a := range v.Items {
				walk(a)
			}
		}
	}
	walk(e)
	return out
}

// namesIn collects all identifiers referenced in an expression tree.
func namesIn(e pyExpr) []string {
	var out []string
	var walk func(pyExpr)
	walk = func(x pyExpr) {
		switch v := x.(type) {
		case *pyName:
			out = append(out, v.Name)
		case *pyAttr:
			walk(v.Base)
		case *pyCall:
			walk(v.Fn)
			for _, a := range v.Args {
				walk(a)
			}
			for _, a := range v.Kwargs {
				walk(a)
			}
		case *pySub:
			walk(v.Base)
			for _, a := range v.Index {
				walk(a)
			}
		case *pyList:
			for _, a := range v.Items {
				walk(a)
			}
		}
	}
	walk(e)
	return out
}

// literalText renders a literal-ish expression for hyperparameter capture.
func literalText(e pyExpr) string {
	switch x := e.(type) {
	case *pyStr:
		return x.Val
	case *pyNum:
		return x.Val
	case *pyName:
		return x.Name
	case *pyList:
		var parts []string
		for _, it := range x.Items {
			parts = append(parts, literalText(it))
		}
		return "[" + strings.Join(parts, ",") + "]"
	default:
		return "<expr>"
	}
}
