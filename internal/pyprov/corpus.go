package pyprov

import "fmt"

// The labelled script corpora reproduce the paper's Python-provenance
// coverage study (49 "Kaggle" scripts, 37 "Microsoft" production scripts).
// The originals are unavailable, so these synthetic corpora recreate the
// populations' *miss modes*: community scripts wrap models in custom
// classes the KB has never seen and load data through opaque helpers
// (downloaded archives, pickles, path-building utilities), while the
// enterprise scripts are standardized on read_sql + sklearn and analyze
// cleanly. Ground-truth labels are attached to every script.

// Truth is the ground-truth label of a script.
type Truth struct {
	Models   int
	Datasets int
}

// Script is one corpus member.
type Script struct {
	Name   string
	Source string
	Truth  Truth
}

var kaggleModels = []struct{ module, class string }{
	{"sklearn.ensemble", "RandomForestClassifier"},
	{"sklearn.linear_model", "LogisticRegression"},
	{"xgboost", "XGBClassifier"},
	{"sklearn.ensemble", "GradientBoostingRegressor"},
	{"lightgbm", "LGBMClassifier"},
	{"sklearn.svm", "SVC"},
	{"sklearn.tree", "DecisionTreeClassifier"},
	{"sklearn.neighbors", "KNeighborsClassifier"},
}

var kaggleMetrics = []struct{ module, fn string }{
	{"sklearn.metrics", "accuracy_score"},
	{"sklearn.metrics", "roc_auc_score"},
	{"sklearn.metrics", "f1_score"},
}

// KaggleCorpus generates the 49 community-style scripts.
//
// Layout (indices 0..48):
//   - 0..18  (19): opaque data source, known model      -> dataset missed
//   - 19..29 (11): csv source, TWO known models
//   - 30..45 (16): csv source, one known model
//   - 46..48 (3):  csv source, custom wrapper model     -> model missed
//
// Ground truth: models = 19 + 22 + 16 + 3 = 60, identified 57 (95.0%);
// datasets = 49, identified 30 (61.2%).
func KaggleCorpus() []Script {
	var out []Script
	for i := 0; i < 49; i++ {
		m := kaggleModels[i%len(kaggleModels)]
		metric := kaggleMetrics[i%len(kaggleMetrics)]
		name := fmt.Sprintf("kaggle_%02d.py", i)
		switch {
		case i < 19:
			// Opaque source: a competition helper the KB cannot know.
			src := fmt.Sprintf(`import pandas as pd
from %s import %s
from %s import %s
from competition_utils import load_train_data

df = load_train_data('comp-%d')
X = df.drop(['target'], axis=1)
y = df['target']
clf = %s(n_estimators=%d)
clf.fit(X, y)
preds = clf.predict(X)
score = %s(y, preds)
`, m.module, m.class, metric.module, metric.fn, i, m.class, 50+i, metric.fn)
			out = append(out, Script{Name: name, Source: src, Truth: Truth{Models: 1, Datasets: 1}})
		case i < 30:
			// Two models, clean csv source.
			m2 := kaggleModels[(i+3)%len(kaggleModels)]
			src := fmt.Sprintf(`import pandas as pd
from sklearn.model_selection import train_test_split
from %s import %s
from %s import %s
from %s import %s

df = pd.read_csv('input/train_%d.csv')
X = df.drop(['label'], axis=1)
y = df['label']
X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.2)
m1 = %s(max_depth=%d)
m1.fit(X_train, y_train)
m2 = %s()
m2.fit(X_train, y_train)
s1 = %s(y_test, m1.predict(X_test))
s2 = %s(y_test, m2.predict(X_test))
`, m.module, m.class, m2.module, m2.class, metric.module, metric.fn,
				i, m.class, 3+i%5, m2.class, metric.fn, metric.fn)
			out = append(out, Script{Name: name, Source: src, Truth: Truth{Models: 2, Datasets: 1}})
		case i < 46:
			// Single model, clean csv source, light feature engineering.
			src := fmt.Sprintf(`import pandas as pd
import numpy as np
from sklearn.preprocessing import StandardScaler
from %s import %s
from %s import %s

train = pd.read_csv('data/train_%d.csv')
features = train[['f1', 'f2', 'f3']]
target = train['y']
scaler = StandardScaler()
X = scaler.fit_transform(features)
model = %s(random_state=%d)
model.fit(X, target)
acc = %s(target, model.predict(X))
`, m.module, m.class, metric.module, metric.fn, i, m.class, i, metric.fn)
			out = append(out, Script{Name: name, Source: src, Truth: Truth{Models: 1, Datasets: 1}})
		default:
			// Custom wrapper model: invisible to the knowledge base.
			src := fmt.Sprintf(`import pandas as pd
from my_framework.models import SuperEnsemble
from %s import %s

df = pd.read_csv('data/train_%d.csv')
X = df.drop(['y'], axis=1)
y = df['y']
model = SuperEnsemble(depth=%d)
model.fit(X, y)
score = %s(y, model.predict(X))
`, metric.module, metric.fn, i, i, metric.fn)
			out = append(out, Script{Name: name, Source: src, Truth: Truth{Models: 1, Datasets: 1}})
		}
	}
	return out
}

var msftTables = []string{"telemetry", "job_history", "cluster_load", "sales_facts", "support_tickets"}

// MicrosoftCorpus generates the 37 standardized production scripts: every
// one reads training data through read_sql with a parseable query and uses
// a KB-known model, so both coverage figures are 100%.
func MicrosoftCorpus() []Script {
	var out []Script
	for i := 0; i < 37; i++ {
		m := kaggleModels[i%len(kaggleModels)]
		table := msftTables[i%len(msftTables)]
		src := fmt.Sprintf(`import pandas as pd
from sklearn.model_selection import train_test_split
from sklearn.preprocessing import StandardScaler
from %s import %s
from sklearn.metrics import roc_auc_score

conn = get_warehouse_connection()
df = pd.read_sql('SELECT f1, f2, f3, label FROM %s WHERE day >= 20190101', conn)
X = df[['f1', 'f2', 'f3']]
y = df['label']
X_train, X_test, y_train, y_test = train_test_split(X, y, test_size=0.25)
scaler = StandardScaler()
X_train_s = scaler.fit_transform(X_train)
model = %s(n_estimators=%d, max_depth=%d)
model.fit(X_train_s, y_train)
auc = roc_auc_score(y_test, model.predict(X_test))
`, m.module, m.class, table, m.class, 100+i, 3+i%4)
		out = append(out, Script{
			Name: fmt.Sprintf("msft_%02d.py", i), Source: src,
			Truth: Truth{Models: 1, Datasets: 1},
		})
	}
	return out
}

// CoverageReport aggregates analyzer coverage against ground truth — the
// reproduction of the paper's Python-provenance table.
type CoverageReport struct {
	Scripts       int
	ModelsTotal   int
	ModelsFound   int
	DatasetsTotal int
	DatasetsFound int
}

// ModelPct returns the percentage of ground-truth models identified.
func (r CoverageReport) ModelPct() float64 {
	if r.ModelsTotal == 0 {
		return 0
	}
	return 100 * float64(r.ModelsFound) / float64(r.ModelsTotal)
}

// DatasetPct returns the percentage of ground-truth datasets identified.
func (r CoverageReport) DatasetPct() float64 {
	if r.DatasetsTotal == 0 {
		return 0
	}
	return 100 * float64(r.DatasetsFound) / float64(r.DatasetsTotal)
}

// EvaluateCoverage runs the analyzer over a corpus and scores it against
// the ground-truth labels. Per script, found counts are capped at the
// labelled truth so spurious detections cannot inflate coverage.
func EvaluateCoverage(a *Analyzer, corpus []Script) CoverageReport {
	var r CoverageReport
	r.Scripts = len(corpus)
	for _, s := range corpus {
		res := a.Analyze(s.Name, s.Source)
		r.ModelsTotal += s.Truth.Models
		r.DatasetsTotal += s.Truth.Datasets
		mf := len(res.Models)
		if mf > s.Truth.Models {
			mf = s.Truth.Models
		}
		df := len(res.Datasets)
		if df > s.Truth.Datasets {
			df = s.Truth.Datasets
		}
		r.ModelsFound += mf
		r.DatasetsFound += df
	}
	return r
}
