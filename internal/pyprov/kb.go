// Package pyprov is the Python provenance module of §4.2: it statically
// analyzes (a practical subset of) Python data-science scripts, identifies
// which variables correspond to models, hyperparameters, features, metrics
// and training datasets using a knowledge base of ML APIs, tracks the
// transformations performed on those variables, and links SQL-sourced
// datasets to the tables of the provenance catalog — connecting the Python
// world to the DBMS world (challenge C3).
package pyprov

import "strings"

// Role classifies a knowledge-base API.
type Role int

// API roles.
const (
	RoleModel Role = iota
	RoleFeaturizer
	RoleDataReader
	RoleMetric
	RoleSplitter
)

// KBEntry describes one known API.
type KBEntry struct {
	// FullName is the canonical dotted path, e.g.
	// "sklearn.linear_model.LogisticRegression" or "pandas.read_sql".
	FullName string
	Role     Role
	// ReaderKind, for RoleDataReader, classifies the source: "sql",
	// "file", "builtin".
	ReaderKind string
}

// KnowledgeBase maps canonical API paths to entries. The paper's module
// "maintains a knowledge base of ML APIs"; this is ours, covering the
// packages the GitHub study found dominant (numpy/pandas/sklearn plus the
// usual boosters).
type KnowledgeBase struct {
	entries map[string]KBEntry
}

// DefaultKB returns the built-in knowledge base.
func DefaultKB() *KnowledgeBase {
	kb := &KnowledgeBase{entries: map[string]KBEntry{}}
	add := func(name string, role Role, kind string) {
		kb.entries[name] = KBEntry{FullName: name, Role: role, ReaderKind: kind}
	}
	// Models.
	for _, m := range []string{
		"sklearn.linear_model.LogisticRegression",
		"sklearn.linear_model.LinearRegression",
		"sklearn.linear_model.Ridge",
		"sklearn.linear_model.Lasso",
		"sklearn.linear_model.SGDClassifier",
		"sklearn.tree.DecisionTreeClassifier",
		"sklearn.tree.DecisionTreeRegressor",
		"sklearn.ensemble.RandomForestClassifier",
		"sklearn.ensemble.RandomForestRegressor",
		"sklearn.ensemble.GradientBoostingClassifier",
		"sklearn.ensemble.GradientBoostingRegressor",
		"sklearn.svm.SVC",
		"sklearn.svm.SVR",
		"sklearn.naive_bayes.GaussianNB",
		"sklearn.neighbors.KNeighborsClassifier",
		"sklearn.cluster.KMeans",
		"sklearn.pipeline.Pipeline",
		"xgboost.XGBClassifier",
		"xgboost.XGBRegressor",
		"lightgbm.LGBMClassifier",
		"lightgbm.LGBMRegressor",
		"catboost.CatBoostClassifier",
	} {
		add(m, RoleModel, "")
	}
	// Featurizers.
	for _, f := range []string{
		"sklearn.preprocessing.StandardScaler",
		"sklearn.preprocessing.MinMaxScaler",
		"sklearn.preprocessing.OneHotEncoder",
		"sklearn.preprocessing.LabelEncoder",
		"sklearn.feature_extraction.text.TfidfVectorizer",
		"sklearn.feature_extraction.text.CountVectorizer",
		"sklearn.decomposition.PCA",
	} {
		add(f, RoleFeaturizer, "")
	}
	// Data readers.
	add("pandas.read_sql", RoleDataReader, "sql")
	add("pandas.read_sql_query", RoleDataReader, "sql")
	add("pandas.read_sql_table", RoleDataReader, "table")
	add("pandas.read_csv", RoleDataReader, "file")
	add("pandas.read_parquet", RoleDataReader, "file")
	add("pandas.read_json", RoleDataReader, "file")
	add("pandas.read_excel", RoleDataReader, "file")
	add("numpy.loadtxt", RoleDataReader, "file")
	add("numpy.load", RoleDataReader, "file")
	add("sklearn.datasets.load_iris", RoleDataReader, "builtin")
	add("sklearn.datasets.load_digits", RoleDataReader, "builtin")
	add("sklearn.datasets.make_classification", RoleDataReader, "builtin")
	add("sklearn.datasets.fetch_openml", RoleDataReader, "builtin")
	// Metrics.
	for _, m := range []string{
		"sklearn.metrics.accuracy_score",
		"sklearn.metrics.roc_auc_score",
		"sklearn.metrics.mean_squared_error",
		"sklearn.metrics.f1_score",
		"sklearn.metrics.precision_score",
		"sklearn.metrics.recall_score",
		"sklearn.metrics.log_loss",
	} {
		add(m, RoleMetric, "")
	}
	// Splitters.
	add("sklearn.model_selection.train_test_split", RoleSplitter, "")
	add("sklearn.model_selection.cross_val_score", RoleMetric, "")
	return kb
}

// Lookup resolves a canonical dotted path; functions may be referenced by
// their full module path or by any suffix match after a from-import.
func (kb *KnowledgeBase) Lookup(path string) (KBEntry, bool) {
	if e, ok := kb.entries[path]; ok {
		return e, true
	}
	// from sklearn.linear_model import LogisticRegression
	// resolves as "sklearn.linear_model.LogisticRegression" upstream;
	// suffix matching handles "module.Class" spellings.
	for full, e := range kb.entries {
		if strings.HasSuffix(full, "."+path) {
			return e, true
		}
	}
	return KBEntry{}, false
}

// Add registers a custom entry (enterprise KBs extend the default one).
func (kb *KnowledgeBase) Add(e KBEntry) { kb.entries[e.FullName] = e }

// Len returns the number of known APIs.
func (kb *KnowledgeBase) Len() int { return len(kb.entries) }
