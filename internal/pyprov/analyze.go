package pyprov

import (
	"sort"
	"strings"

	"repro/internal/provenance"
	"repro/internal/sql"
)

// DatasetInfo is one identified training-data source.
type DatasetInfo struct {
	Var    string // the variable the data landed in
	Kind   string // "sql", "table", "file", "builtin"
	Source string // query text, file path, or loader name
	Tables []string
}

// ModelInfo is one identified model variable.
type ModelInfo struct {
	Var         string
	Class       string // canonical KB path
	Hyperparams map[string]string
	Trained     bool
	FeatureVars []string      // variables passed to fit()
	Datasets    []DatasetInfo // data sources feeding the fit
}

// Analysis is the result of analyzing one script.
type Analysis struct {
	Script   string
	Models   []ModelInfo
	Datasets []DatasetInfo
	Metrics  map[string]string // metric function -> variable it landed in
	// Unresolved counts constructs the analyzer saw but could not map to
	// the knowledge base (honesty metric for coverage studies).
	Unresolved int
}

// Analyzer performs static analysis over Python-subset scripts.
type Analyzer struct {
	KB *KnowledgeBase
}

// NewAnalyzer returns an analyzer over the default knowledge base.
func NewAnalyzer() *Analyzer { return &Analyzer{KB: DefaultKB()} }

type varInfo struct {
	// datasets are the data sources reaching this variable.
	datasets []int // indices into Analysis.Datasets
	// model, when >= 0, indexes Analysis.Models.
	model int
}

// Analyze statically analyzes the script source.
func (a *Analyzer) Analyze(name, src string) *Analysis {
	res := &Analysis{Script: name, Metrics: map[string]string{}}
	aliases := map[string]string{} // local name -> canonical module path
	vars := map[string]*varInfo{}

	getVar := func(v string) *varInfo {
		if vars[v] == nil {
			vars[v] = &varInfo{model: -1}
		}
		return vars[v]
	}

	// resolve maps a dotted local name to a canonical KB path using the
	// import aliases.
	resolve := func(dotted string) string {
		if dotted == "" {
			return ""
		}
		parts := strings.SplitN(dotted, ".", 2)
		if full, ok := aliases[parts[0]]; ok {
			if len(parts) == 2 {
				return full + "." + parts[1]
			}
			return full
		}
		return dotted
	}

	// datasets reachable from an expression: union over referenced names.
	datasetsOf := func(e pyExpr) []int {
		seen := map[int]bool{}
		var out []int
		for _, n := range namesIn(e) {
			if vi := vars[n]; vi != nil {
				for _, d := range vi.datasets {
					if !seen[d] {
						seen[d] = true
						out = append(out, d)
					}
				}
			}
		}
		sort.Ints(out)
		return out
	}

	for _, rawLine := range strings.Split(src, "\n") {
		line := strings.TrimSpace(rawLine)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Ignore control flow and defs: the analyzer is flow-insensitive.
		for _, kw := range []string{"if ", "for ", "while ", "def ", "class ", "try", "except", "else", "elif ", "with ", "return ", "print("} {
			if strings.HasPrefix(line, kw) {
				line = ""
				break
			}
		}
		if line == "" {
			continue
		}

		switch {
		case strings.HasPrefix(line, "import "):
			// import pandas as pd / import xgboost
			rest := strings.TrimPrefix(line, "import ")
			for _, part := range strings.Split(rest, ",") {
				fields := strings.Fields(strings.TrimSpace(part))
				switch len(fields) {
				case 1:
					aliases[fields[0]] = fields[0]
				case 3:
					if fields[1] == "as" {
						aliases[fields[2]] = fields[0]
					}
				}
			}
			continue
		case strings.HasPrefix(line, "from "):
			// from sklearn.linear_model import LogisticRegression as LR
			rest := strings.TrimPrefix(line, "from ")
			idx := strings.Index(rest, " import ")
			if idx < 0 {
				continue
			}
			module := strings.TrimSpace(rest[:idx])
			for _, part := range strings.Split(rest[idx+len(" import "):], ",") {
				fields := strings.Fields(strings.TrimSpace(part))
				switch len(fields) {
				case 1:
					aliases[fields[0]] = module + "." + fields[0]
				case 3:
					if fields[1] == "as" {
						aliases[fields[2]] = module + "." + fields[0]
					}
				}
			}
			continue
		}

		// Assignment or bare expression.
		targets, rhs := splitAssignment(line)
		exprs, err := parsePyExpr(rhs)
		if err != nil || len(exprs) == 0 {
			continue
		}

		// Record dataset/model/metric facts from each operand; the first
		// operand drives variable classification.
		primary := exprs[0]
		if call, ok := primary.(*pyCall); ok {
			full := resolve(dottedName(call.Fn))
			if entry, known := a.KB.Lookup(full); known {
				switch entry.Role {
				case RoleDataReader:
					ds := DatasetInfo{Kind: entry.ReaderKind, Source: full}
					if s := stringsIn(call); len(s) > 0 {
						ds.Source = s[0]
					}
					if entry.ReaderKind == "sql" {
						if stmt, err := sql.ParseOne(ds.Source); err == nil {
							ds.Tables = sql.Analyze(stmt).ReadTables
						}
					}
					if entry.ReaderKind == "table" {
						ds.Tables = []string{ds.Source}
					}
					idx := len(res.Datasets)
					for _, tgt := range targets {
						ds.Var = tgt
						getVar(tgt).datasets = append(getVar(tgt).datasets, idx)
					}
					if len(targets) > 0 {
						ds.Var = targets[0]
					}
					res.Datasets = append(res.Datasets, ds)
					continue
				case RoleModel:
					mi := ModelInfo{Class: entry.FullName, Hyperparams: map[string]string{}}
					for k, v := range call.Kwargs {
						mi.Hyperparams[k] = literalText(v)
					}
					idx := len(res.Models)
					if len(targets) > 0 {
						mi.Var = targets[0]
						getVar(targets[0]).model = idx
					}
					res.Models = append(res.Models, mi)
					continue
				case RoleMetric:
					fn := full
					if len(targets) > 0 {
						res.Metrics[fn] = targets[0]
					} else {
						res.Metrics[fn] = ""
					}
					continue
				case RoleSplitter:
					// Targets inherit dataset provenance from the args.
					ds := datasetsOf(call)
					for _, tgt := range targets {
						getVar(tgt).datasets = append(getVar(tgt).datasets, ds...)
					}
					continue
				case RoleFeaturizer:
					// fit_transform flows below via method handling.
				}
			} else if dottedName(call.Fn) != "" && looksLikeConstructor(dottedName(call.Fn)) && len(targets) > 0 {
				// Unknown constructor-like call: count as unresolved (the
				// coverage misses the paper's table quantifies).
				res.Unresolved++
			}

			// Method calls on tracked variables.
			if attr, ok := call.Fn.(*pyAttr); ok {
				base := rootName(attr.Base)
				vi := vars[base]
				switch attr.Attr {
				case "fit", "fit_transform", "train":
					if vi != nil && vi.model >= 0 {
						m := &res.Models[vi.model]
						m.Trained = true
						for _, arg := range call.Args {
							if rn := rootName(arg); rn != "" {
								m.FeatureVars = append(m.FeatureVars, rn)
							}
						}
						seen := map[int]bool{}
						for _, arg := range call.Args {
							for _, d := range datasetsOf(arg) {
								if !seen[d] {
									seen[d] = true
									m.Datasets = append(m.Datasets, res.Datasets[d])
								}
							}
						}
						continue
					}
				}
			}
		}

		// Generic dataflow: targets inherit dataset/model provenance from
		// every operand of the right-hand side.
		if len(targets) > 0 {
			var ds []int
			model := -1
			for _, e := range exprs {
				ds = append(ds, datasetsOf(e)...)
				for _, n := range namesIn(e) {
					if vi := vars[n]; vi != nil && vi.model >= 0 {
						model = vi.model
					}
				}
			}
			for _, tgt := range targets {
				tv := getVar(tgt)
				tv.datasets = append(tv.datasets, ds...)
				if model >= 0 {
					tv.model = model
				}
			}
		}
	}
	return res
}

// splitAssignment splits "a, b = rhs" into targets and rhs; bare
// expressions return no targets. Comparison operators containing '=' are
// respected.
func splitAssignment(line string) (targets []string, rhs string) {
	depth := 0
	for i := 0; i < len(line); i++ {
		switch line[i] {
		case '(', '[', '{':
			depth++
		case ')', ']', '}':
			depth--
		case '=':
			if depth > 0 {
				continue
			}
			if i+1 < len(line) && line[i+1] == '=' {
				return nil, line // comparison
			}
			if i > 0 && (line[i-1] == '!' || line[i-1] == '<' || line[i-1] == '>' || line[i-1] == '+' || line[i-1] == '-') {
				return nil, line
			}
			lhs := line[:i]
			for _, t := range strings.Split(lhs, ",") {
				t = strings.TrimSpace(t)
				if isIdent(t) {
					targets = append(targets, t)
				}
			}
			return targets, strings.TrimSpace(line[i+1:])
		}
	}
	return nil, line
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || (i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

// looksLikeConstructor guesses that a dotted name ending in a capitalized
// identifier is a class instantiation.
func looksLikeConstructor(dotted string) bool {
	parts := strings.Split(dotted, ".")
	last := parts[len(parts)-1]
	return last != "" && last[0] >= 'A' && last[0] <= 'Z'
}

// LinkToCatalog publishes the analysis into the provenance catalog,
// connecting Python-side models to DBMS tables (challenge C3).
func (res *Analysis) LinkToCatalog(tr *provenance.SQLTracker) {
	for i, m := range res.Models {
		if !m.Trained {
			continue
		}
		var tables []string
		for _, d := range m.Datasets {
			tables = append(tables, d.Tables...)
		}
		tr.RecordTraining(res.Script+"::"+m.Var, i+1, res.Script, tables, m.Hyperparams, nil)
	}
}
