package pyprov

import (
	"strings"
	"testing"

	"repro/internal/provenance"
)

func TestAnalyzeBasicScript(t *testing.T) {
	src := `import pandas as pd
from sklearn.linear_model import LogisticRegression
from sklearn.metrics import accuracy_score

df = pd.read_sql('SELECT age, income, label FROM customers', conn)
X = df[['age', 'income']]
y = df['label']
model = LogisticRegression(C=0.5, max_iter=200)
model.fit(X, y)
acc = accuracy_score(y, model.predict(X))
`
	a := NewAnalyzer()
	res := a.Analyze("s.py", src)
	if len(res.Models) != 1 {
		t.Fatalf("models = %+v", res.Models)
	}
	m := res.Models[0]
	if m.Var != "model" || m.Class != "sklearn.linear_model.LogisticRegression" {
		t.Errorf("model = %+v", m)
	}
	if !m.Trained {
		t.Error("fit() not detected")
	}
	if m.Hyperparams["C"] != "0.5" || m.Hyperparams["max_iter"] != "200" {
		t.Errorf("hyperparams = %v", m.Hyperparams)
	}
	if len(res.Datasets) != 1 || res.Datasets[0].Kind != "sql" {
		t.Fatalf("datasets = %+v", res.Datasets)
	}
	if len(res.Datasets[0].Tables) != 1 || res.Datasets[0].Tables[0] != "customers" {
		t.Errorf("tables = %v", res.Datasets[0].Tables)
	}
	// The fit's dataset provenance flows df -> X -> fit.
	if len(m.Datasets) != 1 || m.Datasets[0].Tables[0] != "customers" {
		t.Errorf("model datasets = %+v", m.Datasets)
	}
	if len(res.Metrics) != 1 {
		t.Errorf("metrics = %v", res.Metrics)
	}
}

func TestAnalyzeImportStyles(t *testing.T) {
	src := `import xgboost
from sklearn.ensemble import RandomForestClassifier as RF
import pandas as pd

a = xgboost.XGBClassifier()
b = RF(n_estimators=10)
df = pd.read_csv('x.csv')
a.fit(df, df)
b.fit(df, df)
`
	res := NewAnalyzer().Analyze("s.py", src)
	if len(res.Models) != 2 {
		t.Fatalf("models = %+v", res.Models)
	}
	if res.Models[0].Class != "xgboost.XGBClassifier" {
		t.Errorf("class = %s", res.Models[0].Class)
	}
	if res.Models[1].Class != "sklearn.ensemble.RandomForestClassifier" {
		t.Errorf("aliased class = %s", res.Models[1].Class)
	}
	for _, m := range res.Models {
		if !m.Trained {
			t.Errorf("model %s not marked trained", m.Var)
		}
	}
}

func TestAnalyzeTrainTestSplitFlow(t *testing.T) {
	src := `import pandas as pd
from sklearn.model_selection import train_test_split
from sklearn.svm import SVC

df = pd.read_csv('train.csv')
X_train, X_test, y_train, y_test = train_test_split(df, df)
clf = SVC()
clf.fit(X_train, y_train)
`
	res := NewAnalyzer().Analyze("s.py", src)
	if len(res.Models) != 1 || !res.Models[0].Trained {
		t.Fatalf("models = %+v", res.Models)
	}
	if len(res.Models[0].Datasets) != 1 {
		t.Errorf("dataset provenance lost through train_test_split: %+v", res.Models[0].Datasets)
	}
}

func TestAnalyzeUnknownWrapperMissed(t *testing.T) {
	src := `from my_framework import MagicModel
m = MagicModel()
m.fit(x, y)
`
	res := NewAnalyzer().Analyze("s.py", src)
	if len(res.Models) != 0 {
		t.Errorf("unknown model should be missed, got %+v", res.Models)
	}
	if res.Unresolved == 0 {
		t.Error("unresolved constructor should be counted")
	}
}

func TestAnalyzeDerivedFrames(t *testing.T) {
	src := `import pandas as pd
from sklearn.cluster import KMeans
raw = pd.read_parquet('events.parquet')
clean = raw.dropna()
sample = clean.head(1000)
km = KMeans(n_clusters=5)
km.fit(sample)
`
	res := NewAnalyzer().Analyze("s.py", src)
	if len(res.Models) != 1 || !res.Models[0].Trained {
		t.Fatalf("models = %+v", res.Models)
	}
	if len(res.Models[0].Datasets) != 1 || res.Models[0].Datasets[0].Kind != "file" {
		t.Errorf("provenance through derivations lost: %+v", res.Models[0].Datasets)
	}
}

func TestLinkToCatalog(t *testing.T) {
	src := `import pandas as pd
from sklearn.linear_model import Ridge
df = pd.read_sql('SELECT a, b FROM metrics_daily', conn)
r = Ridge(alpha=0.1)
r.fit(df, df)
`
	res := NewAnalyzer().Analyze("train.py", src)
	cat := provenance.NewCatalog()
	tr := provenance.NewSQLTracker(cat)
	res.LinkToCatalog(tr)
	impacted := tr.ImpactedModels("metrics_daily")
	if len(impacted) != 1 {
		t.Fatalf("impacted = %v", impacted)
	}
	if !strings.Contains(impacted[0].Name, "train.py::r") {
		t.Errorf("model entity = %s", impacted[0].Name)
	}
}

func TestSplitAssignment(t *testing.T) {
	cases := []struct {
		line    string
		targets int
	}{
		{"x = 1", 1},
		{"a, b = f()", 2},
		{"a, b, c, d = train_test_split(X, y)", 4},
		{"f(x)", 0},
		{"x == y", 0},
		{"d['k'] = 1", 0}, // subscript targets are not plain identifiers
		{"x = d[k == 1]", 1},
	}
	for _, c := range cases {
		targets, _ := splitAssignment(c.line)
		if len(targets) != c.targets {
			t.Errorf("splitAssignment(%q) = %v, want %d targets", c.line, targets, c.targets)
		}
	}
}

func TestPyParserShapes(t *testing.T) {
	exprs, err := parsePyExpr("pd.read_csv('a.csv', sep=',')")
	if err != nil || len(exprs) != 1 {
		t.Fatalf("parse: %v %v", exprs, err)
	}
	call := exprs[0].(*pyCall)
	if dottedName(call.Fn) != "pd.read_csv" {
		t.Errorf("fn = %s", dottedName(call.Fn))
	}
	if call.Kwargs["sep"] == nil || len(call.Args) != 1 {
		t.Errorf("args = %+v kwargs = %+v", call.Args, call.Kwargs)
	}
	// Subscript with list.
	exprs, err = parsePyExpr("df[['a', 'b']]")
	if err != nil {
		t.Fatal(err)
	}
	if rootName(exprs[0]) != "df" {
		t.Errorf("root = %s", rootName(exprs[0]))
	}
	ss := stringsIn(exprs[0])
	if len(ss) != 2 {
		t.Errorf("strings = %v", ss)
	}
	// Binary expression: both operands surfaced.
	exprs, err = parsePyExpr("a + b")
	if err != nil || len(exprs) != 2 {
		t.Fatalf("binary operands: %v %v", exprs, err)
	}
	if _, err := parsePyExpr("f('unterminated"); err == nil {
		t.Error("unterminated string should error")
	}
}

func TestCorpusCoverageKaggle(t *testing.T) {
	rep := EvaluateCoverage(NewAnalyzer(), KaggleCorpus())
	if rep.Scripts != 49 {
		t.Fatalf("scripts = %d", rep.Scripts)
	}
	if rep.ModelsTotal != 60 || rep.DatasetsTotal != 49 {
		t.Fatalf("ground truth totals: models=%d datasets=%d", rep.ModelsTotal, rep.DatasetsTotal)
	}
	// Paper: 95% models, 61% datasets. Require the same figures within a
	// point (the corpus is constructed, so these should be exact).
	if pct := rep.ModelPct(); pct < 94 || pct > 96 {
		t.Errorf("model coverage = %.1f%%, want ~95%%", pct)
	}
	if pct := rep.DatasetPct(); pct < 60 || pct > 62.5 {
		t.Errorf("dataset coverage = %.1f%%, want ~61%%", pct)
	}
}

func TestCorpusCoverageMicrosoft(t *testing.T) {
	rep := EvaluateCoverage(NewAnalyzer(), MicrosoftCorpus())
	if rep.Scripts != 37 {
		t.Fatalf("scripts = %d", rep.Scripts)
	}
	if rep.ModelPct() != 100 {
		t.Errorf("model coverage = %.1f%%, want 100%%", rep.ModelPct())
	}
	if rep.DatasetPct() != 100 {
		t.Errorf("dataset coverage = %.1f%%, want 100%%", rep.DatasetPct())
	}
	// Every Microsoft dataset must resolve to a concrete warehouse table.
	a := NewAnalyzer()
	for _, s := range MicrosoftCorpus() {
		res := a.Analyze(s.Name, s.Source)
		if len(res.Datasets) != 1 || len(res.Datasets[0].Tables) == 0 {
			t.Fatalf("script %s: dataset tables not resolved: %+v", s.Name, res.Datasets)
		}
	}
}

func TestKBLookup(t *testing.T) {
	kb := DefaultKB()
	if _, ok := kb.Lookup("sklearn.svm.SVC"); !ok {
		t.Error("full path lookup failed")
	}
	if _, ok := kb.Lookup("made.up.Thing"); ok {
		t.Error("unknown path should miss")
	}
	kb.Add(KBEntry{FullName: "corp.ml.InternalModel", Role: RoleModel})
	if _, ok := kb.Lookup("corp.ml.InternalModel"); !ok {
		t.Error("custom entry lookup failed")
	}
	if kb.Len() < 40 {
		t.Errorf("KB suspiciously small: %d", kb.Len())
	}
}
