package infer

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/ml"
	"repro/internal/onnx"
)

// linGraph builds a one-input linear graph scoring coeff*x + intercept —
// distinct parameters stand in for distinct model versions.
func linGraph(coeff, intercept float64) *onnx.Graph {
	g := &onnx.Graph{
		Name:   "m",
		Inputs: []onnx.InputSpec{{Name: "x", Kind: ml.KindNumeric}},
		Feats:  []onnx.FeatNode{{Op: onnx.OpScaler, Input: "x", Mean: 0, Scale: 1}},
		Model:  onnx.ModelNode{Op: onnx.OpLinear, Coeff: []float64{coeff}, Intercept: intercept},
		Output: "score",
	}
	g.Relayout()
	return g
}

// fakeRegistry is a test registry: versioned graphs, a bumpable generation,
// and a swappable serving graph.
type fakeRegistry struct {
	mu       sync.Mutex
	gen      int64
	versions map[string]*onnx.Graph // "name@v" -> graph
	serving  map[string]*onnx.Graph // name -> production graph
}

func newFakeRegistry() *fakeRegistry {
	return &fakeRegistry{gen: 1, versions: map[string]*onnx.Graph{}, serving: map[string]*onnx.Graph{}}
}

func (r *fakeRegistry) Generation() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen
}

func (r *fakeRegistry) GraphFor(ref string) (*onnx.Graph, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.versions[ref]; ok {
		return g, nil
	}
	if g, ok := r.serving[ref]; ok {
		return g, nil
	}
	return nil, fmt.Errorf("no model %q", ref)
}

func (r *fakeRegistry) addVersion(name string, v int, g *onnx.Graph) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.versions[fmt.Sprintf("%s@%d", name, v)] = g
}

// redeploy swaps the serving graph and bumps the generation, like a
// registry Promote.
func (r *fakeRegistry) redeploy(name string, g *onnx.Graph) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.serving[name] = g
	r.gen++
}

func oneRow(v float64) *onnx.Batch {
	return &onnx.Batch{N: 1, Cols: []onnx.Column{{Nums: []float64{v}}}}
}

func batchOf(vals ...float64) *onnx.Batch {
	return &onnx.Batch{N: len(vals), Cols: []onnx.Column{{Nums: vals}}}
}

func TestPlaneScoreMatchesDirect(t *testing.T) {
	reg := newFakeRegistry()
	g := linGraph(2, 1)
	reg.redeploy("m", g)
	p := New(reg, Config{BatchWindow: time.Millisecond})
	defer p.Close()

	b := batchOf(1, 2, 3, 4)
	out := make([]float64, b.N)
	if err := p.Score(context.Background(), "m", g, b, out); err != nil {
		t.Fatal(err)
	}
	for i, x := range []float64{1, 2, 3, 4} {
		if want := 2*x + 1; out[i] != want {
			t.Fatalf("row %d: got %v want %v", i, out[i], want)
		}
	}
	// Same batch again: every row must come from the cache.
	hits0, _, _ := p.cache.stats()
	out2 := make([]float64, b.N)
	if err := p.Score(context.Background(), "m", g, b, out2); err != nil {
		t.Fatal(err)
	}
	hits1, _, _ := p.cache.stats()
	if hits1-hits0 != int64(b.N) {
		t.Fatalf("expected %d cache hits, got %d", b.N, hits1-hits0)
	}
	for i := range out {
		if out2[i] != out[i] {
			t.Fatalf("cached score diverged at row %d", i)
		}
	}
}

// TestPlaneCoalesces drives concurrent single-row requests (the UDF-path
// shape) and asserts the batcher merges them: far fewer backend calls than
// requests, i.e. occupancy above 1.
func TestPlaneCoalesces(t *testing.T) {
	reg := newFakeRegistry()
	g := linGraph(1, 0)
	reg.redeploy("m", g)
	p := New(reg, Config{BatchWindow: 5 * time.Millisecond, CacheSize: -1})
	defer p.Close()

	const workers, perWorker = 16, 20
	var wg sync.WaitGroup
	var failed atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				out := make([]float64, 1)
				v := float64(w*perWorker + i)
				if err := p.Score(context.Background(), "m", g, oneRow(v), out); err != nil || out[0] != v {
					failed.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d scoring calls failed or returned wrong values", failed.Load())
	}
	gauges := p.Gauges()
	if occ := gauges["flock_infer_batch_occupancy"]; occ <= 1 {
		t.Fatalf("batch occupancy %v: no coalescing happened", occ)
	}
	if gauges["flock_infer_coalesced_total"] != workers*perWorker {
		t.Fatalf("coalesced %v, want %d", gauges["flock_infer_coalesced_total"], workers*perWorker)
	}
}

// TestPlaneLargeBatchBypassesBatcher: a full window (>= BatchRows) must not
// queue behind the coalescer.
func TestPlaneLargeBatchBypassesBatcher(t *testing.T) {
	reg := newFakeRegistry()
	g := linGraph(1, 0)
	reg.redeploy("m", g)
	p := New(reg, Config{BatchRows: 4, CacheSize: -1})
	defer p.Close()

	b := batchOf(1, 2, 3, 4, 5)
	out := make([]float64, b.N)
	if err := p.Score(context.Background(), "m", g, b, out); err != nil {
		t.Fatal(err)
	}
	gauges := p.Gauges()
	if gauges["flock_infer_direct_total"] != 1 || gauges["flock_infer_coalesced_total"] != 0 {
		t.Fatalf("direct=%v coalesced=%v, want 1/0",
			gauges["flock_infer_direct_total"], gauges["flock_infer_coalesced_total"])
	}
}

// TestPlaneBatcherFaultDegradesToDirect arms infer.batch and proves the
// query-never-fails contract: every Score succeeds with correct results,
// scored via the direct fallback.
func TestPlaneBatcherFaultDegradesToDirect(t *testing.T) {
	defer fault.Reset()
	fault.Enable("infer.batch", fault.Spec{})

	reg := newFakeRegistry()
	g := linGraph(3, 0)
	reg.redeploy("m", g)
	p := New(reg, Config{CacheSize: -1})
	defer p.Close()

	for i := 0; i < 10; i++ {
		out := make([]float64, 1)
		if err := p.Score(context.Background(), "m", g, oneRow(float64(i)), out); err != nil {
			t.Fatalf("score %d failed under infer.batch fault: %v", i, err)
		}
		if out[0] != 3*float64(i) {
			t.Fatalf("score %d wrong under degradation: %v", i, out[0])
		}
	}
	if got := p.Gauges()["flock_infer_degraded_total"]; got != 10 {
		t.Fatalf("degraded_total %v, want 10", got)
	}
}

// TestPlaneCacheFaultRecomputes arms infer.cache: scoring must still
// succeed (bypassing the cache), never error.
func TestPlaneCacheFaultRecomputes(t *testing.T) {
	defer fault.Reset()
	fault.Enable("infer.cache", fault.Spec{})

	reg := newFakeRegistry()
	g := linGraph(1, 1)
	reg.redeploy("m", g)
	p := New(reg, Config{BatchWindow: time.Millisecond})
	defer p.Close()

	for i := 0; i < 5; i++ {
		out := make([]float64, 1)
		if err := p.Score(context.Background(), "m", g, oneRow(2), out); err != nil {
			t.Fatal(err)
		}
		if out[0] != 3 {
			t.Fatalf("got %v want 3", out[0])
		}
	}
	gauges := p.Gauges()
	if gauges["flock_infer_cache_faults_total"] != 5 {
		t.Fatalf("cache_faults %v, want 5", gauges["flock_infer_cache_faults_total"])
	}
	if gauges["flock_infer_cache_hits_total"] != 0 {
		t.Fatalf("cache served %v hits while faulted", gauges["flock_infer_cache_hits_total"])
	}
}

// TestGenerationBumpInvalidates is the cache-generation safety contract: a
// redeploy that changes the model must never serve the old version's
// cached score to queries planned after the bump.
func TestGenerationBumpInvalidates(t *testing.T) {
	reg := newFakeRegistry()
	v1 := linGraph(1, 0) // score = x
	v2 := linGraph(1, 5) // score = x + 5
	reg.redeploy("m", v1)
	p := New(reg, Config{BatchWindow: time.Millisecond})
	defer p.Close()

	out := make([]float64, 1)
	if err := p.Score(context.Background(), "m", v1, oneRow(7), out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 7 {
		t.Fatalf("v1 score %v, want 7", out[0])
	}
	reg.redeploy("m", v2) // retrain: generation bump
	if err := p.Score(context.Background(), "m", v2, oneRow(7), out); err != nil {
		t.Fatal(err)
	}
	if out[0] != 12 {
		t.Fatalf("served stale score %v after redeploy, want 12", out[0])
	}
	if _, _, stale := p.cache.stats(); stale == 0 {
		t.Fatal("stale entry was not detected and evicted")
	}
}

// TestConcurrentRedeployNeverServesStale hammers Score from many
// goroutines while another goroutine redeploys new model versions, under
// -race in CI. Every returned score must be explainable by a generation
// that was current at some point during the call — never a version two
// bumps back.
func TestConcurrentRedeployNeverServesStale(t *testing.T) {
	reg := newFakeRegistry()
	// Version k scores x + 1000*k: any stale-cache bleed is unmistakable.
	mkGraph := func(k int) *onnx.Graph { return linGraph(1, float64(1000*k)) }
	reg.redeploy("m", mkGraph(0))
	p := New(reg, Config{BatchWindow: 500 * time.Microsecond})
	defer p.Close()

	stop := make(chan struct{})
	var deployed atomic.Int64 // highest k redeployed so far
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 1; k <= 20; k++ {
			time.Sleep(2 * time.Millisecond)
			reg.redeploy("m", mkGraph(k))
			deployed.Store(int64(k))
		}
		close(stop)
	}()

	var wrong atomic.Int64
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// The version that was current before the call started:
				// anything older returned after this point is stale.
				floor := deployed.Load()
				g, err := reg.GraphFor("m")
				if err != nil {
					wrong.Add(1)
					return
				}
				x := float64(i % 16)
				out := make([]float64, 1)
				if err := p.Score(context.Background(), "m", g, oneRow(x), out); err != nil {
					wrong.Add(1)
					return
				}
				k := int64((out[0] - x) / 1000)
				if k < floor || k > deployed.Load() {
					t.Errorf("worker %d: score %v implies version %d, current window [%d,%d]",
						w, out[0], k, floor, deployed.Load())
					wrong.Add(1)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if wrong.Load() > 0 {
		t.Fatalf("%d stale or failed scores", wrong.Load())
	}
}
