package infer

import (
	"container/list"
	"math"
	"sync"

	"repro/internal/onnx"
)

// scoreCache memoizes model scores keyed on (model, feature-vector hash),
// with each entry stamped by the registry generation and the graph
// fingerprint it was computed under. Like the plan cache, the cache only
// ever amortizes: correctness comes from the generation guard on every
// read, not from eager invalidation — a retrain or redeploy bumps the
// registry generation, and the first lookup that observes the mismatch
// evicts the entry instead of serving it (counted in stale). The cachegen
// flock-vet analyzer enforces that guard.
type scoreCache struct {
	mu      sync.Mutex
	cap     int
	order   *list.List // front = most recently used
	entries map[cacheKey]*list.Element

	hits, misses, stale int64
}

type cacheKey struct {
	model string
	hash  uint64
}

type cacheEntry struct {
	key   cacheKey
	gen   int64
	fp    uint64 // fingerprint of the graph that produced the score
	score float64
}

func newScoreCache(capacity int) *scoreCache {
	return &scoreCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[cacheKey]*list.Element, capacity),
	}
}

// lookup returns the cached score for (model, hash) if and only if it was
// computed under the given registry generation for the given graph
// content. The generation comparison evicts entries orphaned by a retrain
// or redeploy; the fingerprint comparison closes the race where a redeploy
// lands between a caller resolving its graph and the plane stamping the
// entry — a score is only ever served against graph content identical to
// what produced it. (Fingerprints rather than pointer identity, because
// the planner clones the deployed graph into every plan.)
func (c *scoreCache) lookup(model string, hash uint64, gen int64, fp uint64) (float64, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[cacheKey{model: model, hash: hash}]
	if !ok {
		c.misses++
		return 0, false
	}
	e := el.Value.(*cacheEntry)
	if e.gen != gen || e.fp != fp {
		// Stale generation (or a graph from the losing side of a redeploy
		// race): the model changed after this score was computed. Never
		// serve it.
		c.order.Remove(el)
		delete(c.entries, e.key)
		c.stale++
		c.misses++
		return 0, false
	}
	c.order.MoveToFront(el)
	c.hits++
	return e.score, true
}

// store records a score computed under gen for graph fingerprint fp,
// evicting LRU entries beyond capacity.
func (c *scoreCache) store(model string, hash uint64, gen int64, fp uint64, score float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	k := cacheKey{model: model, hash: hash}
	if el, ok := c.entries[k]; ok {
		e := el.Value.(*cacheEntry)
		e.gen, e.fp, e.score = gen, fp, score
		c.order.MoveToFront(el)
		return
	}
	el := c.order.PushFront(&cacheEntry{key: k, gen: gen, fp: fp, score: score})
	c.entries[k] = el
	for c.order.Len() > c.cap {
		last := c.order.Back()
		c.order.Remove(last)
		delete(c.entries, last.Value.(*cacheEntry).key)
	}
}

// stats returns (hits, misses, stale evictions) so far.
func (c *scoreCache) stats() (int64, int64, int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.stale
}

// len reports current occupancy.
func (c *scoreCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// fnv is an inlined FNV-1a accumulator shared by the row hash and the
// graph fingerprint.
type fnv uint64

func (h *fnv) word(v uint64) {
	x := uint64(*h)
	for s := 0; s < 64; s += 8 {
		x ^= (v >> s) & 0xff
		x *= fnvPrime64
	}
	*h = fnv(x)
}

func (h *fnv) float(f float64) { h.word(math.Float64bits(f)) }

func (h *fnv) str(s string) {
	h.word(uint64(len(s)))
	x := uint64(*h)
	for j := 0; j < len(s); j++ {
		x ^= uint64(s[j])
		x *= fnvPrime64
	}
	*h = fnv(x)
}

// hashRow computes an FNV-1a hash over one row of the batch — the
// feature-vector half of the cache key. Column index, kind, and value all
// feed the hash so distinct input layouts (e.g. a sparsity-pruned plan
// graph vs the full registry graph) cannot collide.
func hashRow(b *onnx.Batch, row int) uint64 {
	h := fnv(fnvOffset64)
	for i := range b.Cols {
		col := &b.Cols[i]
		if col.Nums != nil {
			h.word(uint64(2*i + 1))
			h.float(col.Nums[row])
			continue
		}
		h.word(uint64(2*i + 2))
		h.str(col.Strs[row])
	}
	return uint64(h)
}

// fingerprint hashes a graph's full content — inputs, featurizer
// parameters, model weights, output name. The planner clones the deployed
// graph into every plan, so pointer identity cannot tell "same model
// version from another query" apart from "redeployed model"; content
// fingerprints can. Two content-identical graphs score identically, so
// sharing cache entries, backends, and micro-batchers across them is sound
// — and it is exactly that sharing that lets the batcher coalesce PREDICT
// calls from concurrent sessions and cursors.
func fingerprint(g *onnx.Graph) uint64 {
	h := fnv(fnvOffset64)
	h.str(g.Name)
	h.str(g.Output)
	h.word(uint64(len(g.Inputs)))
	for _, in := range g.Inputs {
		h.str(in.Name)
		h.word(uint64(in.Kind))
	}
	h.word(uint64(len(g.Feats)))
	for i := range g.Feats {
		f := &g.Feats[i]
		h.word(uint64(f.Op))
		h.str(f.Input)
		h.word(uint64(f.Offset))
		h.float(f.Mean)
		h.float(f.Scale)
		h.word(uint64(len(f.Categories)))
		for _, c := range f.Categories {
			h.str(c)
		}
		h.word(uint64(f.Buckets))
	}
	m := &g.Model
	h.word(uint64(m.Op))
	h.word(uint64(len(m.Coeff)))
	for _, c := range m.Coeff {
		h.float(c)
	}
	h.float(m.Intercept)
	h.float(m.Base)
	h.float(m.Rate)
	if m.PostSigmoid {
		h.word(1)
	}
	h.word(uint64(len(m.Trees)))
	for t := range m.Trees {
		tr := &m.Trees[t]
		h.word(uint64(len(tr.Feature)))
		for i := range tr.Feature {
			h.word(uint64(tr.Feature[i]))
			h.float(tr.Threshold[i])
			h.word(uint64(uint32(tr.Left[i])))
			h.word(uint64(uint32(tr.Right[i])))
			h.float(tr.Value[i])
		}
	}
	return uint64(h)
}
