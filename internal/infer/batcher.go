package infer

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/onnx"
)

// errBatcherStopped reports a submit against a closed plane; callers fall
// back to direct scoring.
var errBatcherStopped = errors.New("infer: batcher stopped")

// pendingReq is one coalesced scoring request. out is owned by the batcher
// until done is signalled, so a caller whose context dies mid-window can
// abandon the request without racing the dispatcher's result scatter.
type pendingReq struct {
	b    *onnx.Batch
	out  []float64
	done chan error
}

// batcher coalesces small scoring requests for one (model, graph) pair into
// single backend calls: the window closes when maxRows rows have queued or
// window time has passed since the first request, whichever comes first —
// the classic size/latency-bounded micro-batch. One dispatcher goroutine
// per batcher; requests ride channels, so concurrent sessions coalesce
// without shared-state locking on the hot path.
type batcher struct {
	maxRows int
	window  time.Duration
	score   func(b *onnx.Batch, out []float64) error

	submit chan *pendingReq
	stop   chan struct{}
	once   sync.Once

	calls atomic.Int64 // backend invocations
	rows  atomic.Int64 // rows scored through those invocations
}

func newBatcher(maxRows int, window time.Duration, score func(b *onnx.Batch, out []float64) error) *batcher {
	ba := &batcher{
		maxRows: maxRows,
		window:  window,
		score:   score,
		submit:  make(chan *pendingReq, 64),
		stop:    make(chan struct{}),
	}
	go ba.run()
	return ba
}

func (ba *batcher) close() { ba.once.Do(func() { close(ba.stop) }) }

// scoreBatched submits the batch and waits for the window it joins to be
// scored. The result lands in a batcher-owned slice and is copied to out
// only on success, so an abandoned request never writes caller memory.
func (ba *batcher) scoreBatched(ctx context.Context, b *onnx.Batch, out []float64) error {
	r := &pendingReq{b: b, out: make([]float64, b.N), done: make(chan error, 1)}
	select {
	case ba.submit <- r:
	case <-ba.stop:
		return errBatcherStopped
	case <-ctx.Done():
		return ctx.Err()
	}
	select {
	case err := <-r.done:
		if err != nil {
			return err
		}
		copy(out, r.out)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// run is the dispatcher loop: idle-wait for the first request of a window,
// then drain until the row cap or the latency deadline.
func (ba *batcher) run() {
	timer := time.NewTimer(time.Hour)
	if !timer.Stop() {
		<-timer.C
	}
	var (
		pend []*pendingReq
		rows int
	)
	flush := func() {
		if len(pend) > 0 {
			ba.flush(pend, rows)
		}
		pend, rows = nil, 0
	}
	for {
		if len(pend) == 0 {
			select {
			case r := <-ba.submit:
				pend = append(pend, r)
				rows = r.b.N
				timer.Reset(ba.window)
			case <-ba.stop:
				return
			}
			if rows >= ba.maxRows {
				stopTimer(timer)
				flush()
			}
			continue
		}
		select {
		case r := <-ba.submit:
			pend = append(pend, r)
			rows += r.b.N
			if rows >= ba.maxRows {
				stopTimer(timer)
				flush()
			}
		case <-timer.C:
			flush()
		case <-ba.stop:
			stopTimer(timer)
			flush()
			return
		}
	}
}

func stopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}

// flush merges the pending requests into one columnar batch, makes a single
// backend call, and scatters the scores back. The infer.batch failpoint
// fires here: an injected failure is broadcast to every waiter, and the
// plane degrades those requests to direct scoring — a wedged or failing
// batcher must never fail a query.
func (ba *batcher) flush(pend []*pendingReq, rows int) {
	if err := fault.Inject("infer.batch"); err != nil {
		for _, r := range pend {
			r.done <- err
		}
		return
	}
	if len(pend) == 1 {
		// Single-request window: score in place, no merge copy.
		r := pend[0]
		ba.calls.Add(1)
		ba.rows.Add(int64(rows))
		r.done <- ba.score(r.b, r.out)
		return
	}

	first := pend[0].b
	merged := &onnx.Batch{N: rows, Cols: make([]onnx.Column, len(first.Cols))}
	for c := range first.Cols {
		if first.Cols[c].Nums != nil {
			nums := make([]float64, 0, rows)
			for _, r := range pend {
				nums = append(nums, r.b.Cols[c].Nums...)
			}
			merged.Cols[c].Nums = nums
		} else {
			strs := make([]string, 0, rows)
			for _, r := range pend {
				strs = append(strs, r.b.Cols[c].Strs...)
			}
			merged.Cols[c].Strs = strs
		}
	}
	scores := make([]float64, rows)
	ba.calls.Add(1)
	ba.rows.Add(int64(rows))
	err := ba.score(merged, scores)
	off := 0
	for _, r := range pend {
		if err == nil {
			copy(r.out, scores[off:off+r.b.N])
		}
		off += r.b.N
		r.done <- err
	}
}

// stats returns (backend calls, total rows) — occupancy is rows/calls.
func (ba *batcher) stats() (int64, int64) {
	return ba.calls.Load(), ba.rows.Load()
}
