package infer

import (
	"context"
	"testing"
	"time"

	"repro/internal/fault"
)

// scoreN drives n two-row batches of varied values through the plane,
// resolving the serving graph like the engine would.
func scoreN(t *testing.T, p *Plane, model string, n int) {
	t.Helper()
	reg := p.reg
	g, err := reg.GraphFor(model)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		b := batchOf(float64(i%50)/50.0, float64((i+7)%50)/50.0)
		out := make([]float64, b.N)
		if err := p.Score(context.Background(), model, g, b, out); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCanaryAutoPromotes: a candidate that agrees with the serving model
// passes the gate once enough mirrored traffic accumulates, and the
// Promote callback fires.
func TestCanaryAutoPromotes(t *testing.T) {
	reg := newFakeRegistry()
	serving := linGraph(1, 0)
	candidate := linGraph(1, 0.001) // nearly identical
	reg.redeploy("m", serving)
	reg.addVersion("m", 2, candidate)

	var promoted []string
	p := New(reg, Config{
		BatchWindow:      time.Millisecond,
		CacheSize:        -1, // every row must reach the backend and mirror
		CanaryMinSamples: 100,
		Promote: func(model string, version int) error {
			promoted = append(promoted, model)
			reg.redeploy(model, candidate)
			return nil
		},
	})
	defer p.Close()

	if _, err := p.Deploy("m", 2, StageCanary); err != nil {
		t.Fatal(err)
	}
	scoreN(t, p, "m", 80)
	deps := p.Deployments()
	if len(deps) != 1 || deps[0].Stage != StagePromoted.String() {
		t.Fatalf("deployment state %+v, want promoted", deps)
	}
	if len(promoted) != 1 {
		t.Fatalf("promote callback fired %d times, want 1", len(promoted))
	}
	if deps[0].Samples < 100 {
		t.Fatalf("gate acted on %d samples, below minimum", deps[0].Samples)
	}
}

// TestCanaryAutoRollsBackDriftedCandidate: a candidate scoring a shifted
// distribution fails the PSI/agreement gate and is rolled back, with no
// promotion.
func TestCanaryAutoRollsBackDriftedCandidate(t *testing.T) {
	reg := newFakeRegistry()
	reg.redeploy("m", linGraph(1, 0))
	reg.addVersion("m", 2, linGraph(1, 0.6)) // systematically shifted

	promoted := 0
	p := New(reg, Config{
		BatchWindow:      time.Millisecond,
		CacheSize:        -1,
		CanaryMinSamples: 100,
		Promote:          func(string, int) error { promoted++; return nil },
	})
	defer p.Close()

	if _, err := p.Deploy("m", 2, StageCanary); err != nil {
		t.Fatal(err)
	}
	scoreN(t, p, "m", 80)
	deps := p.Deployments()
	if deps[0].Stage != StageRolledBack.String() {
		t.Fatalf("deployment state %+v, want rolled-back", deps[0])
	}
	if promoted != 0 {
		t.Fatal("drifted candidate was promoted")
	}
	if deps[0].Agreement <= 0.05 {
		t.Fatalf("agreement %v does not reflect the drift", deps[0].Agreement)
	}
	if p.Gauges()["flock_infer_rollbacks_total"] != 1 {
		t.Fatal("rollback not counted")
	}
}

// TestCanaryFaultForcesRollback: the infer.canary failpoint skews the
// candidate's mirrored scores, so even an identical candidate drifts and
// the gate rolls it back — the chaos drill the CI canary-smoke job runs.
func TestCanaryFaultForcesRollback(t *testing.T) {
	defer fault.Reset()
	fault.Enable("infer.canary", fault.Spec{})

	reg := newFakeRegistry()
	serving := linGraph(1, 0)
	reg.redeploy("m", serving)
	reg.addVersion("m", 2, serving) // identical candidate

	p := New(reg, Config{
		BatchWindow:      time.Millisecond,
		CacheSize:        -1,
		CanaryMinSamples: 100,
		Promote:          func(string, int) error { t.Fatal("promoted under drift"); return nil },
	})
	defer p.Close()

	if _, err := p.Deploy("m", 2, StageCanary); err != nil {
		t.Fatal(err)
	}
	scoreN(t, p, "m", 80)
	deps := p.Deployments()
	if deps[0].Stage != StageRolledBack.String() {
		t.Fatalf("deployment state %+v, want rolled-back under infer.canary", deps[0])
	}
}

// TestShadowObservesWithoutActing: shadow stage accumulates the same stats
// but never promotes or rolls back on its own; manual promotion applies it.
func TestShadowObservesWithoutActing(t *testing.T) {
	reg := newFakeRegistry()
	reg.redeploy("m", linGraph(1, 0))
	reg.addVersion("m", 2, linGraph(1, 0.9)) // badly drifted

	promoted := 0
	p := New(reg, Config{
		BatchWindow:      time.Millisecond,
		CacheSize:        -1,
		CanaryMinSamples: 50,
		Promote:          func(string, int) error { promoted++; return nil },
	})
	defer p.Close()

	if _, err := p.Deploy("m", 2, StageShadow); err != nil {
		t.Fatal(err)
	}
	scoreN(t, p, "m", 100)
	st := p.Deployments()[0]
	if st.Stage != StageShadow.String() {
		t.Fatalf("shadow stage acted on its own: %+v", st)
	}
	if st.Samples == 0 || st.Agreement == 0 {
		t.Fatalf("shadow stage collected no evidence: %+v", st)
	}

	// Manual rollback always wins, no matter the stats.
	if _, err := p.RollbackCandidate("m"); err != nil {
		t.Fatal(err)
	}
	if p.Deployments()[0].Stage != StageRolledBack.String() {
		t.Fatal("manual rollback did not apply")
	}
	// A rolled-back candidate is not promotable.
	if _, err := p.PromoteCandidate("m"); err == nil {
		t.Fatal("promoted a rolled-back candidate")
	}
	if promoted != 0 {
		t.Fatal("promote callback fired")
	}
}

// TestManualPromotion promotes a shadow candidate by hand.
func TestManualPromotion(t *testing.T) {
	reg := newFakeRegistry()
	reg.redeploy("m", linGraph(1, 0))
	reg.addVersion("m", 2, linGraph(1, 0))

	promoted := 0
	p := New(reg, Config{Promote: func(string, int) error { promoted++; return nil }})
	defer p.Close()

	if _, err := p.Deploy("m", 2, StageShadow); err != nil {
		t.Fatal(err)
	}
	st, err := p.PromoteCandidate("m")
	if err != nil {
		t.Fatal(err)
	}
	if st.Stage != StagePromoted.String() || promoted != 1 {
		t.Fatalf("manual promotion: %+v, callback %d", st, promoted)
	}
}

// TestDeployUnknownVersion errors cleanly.
func TestDeployUnknownVersion(t *testing.T) {
	reg := newFakeRegistry()
	reg.redeploy("m", linGraph(1, 0))
	p := New(reg, Config{})
	defer p.Close()
	if _, err := p.Deploy("m", 9, StageCanary); err == nil {
		t.Fatal("deploying an unregistered version succeeded")
	}
	if _, err := p.Deploy("m", 1, StagePromoted); err == nil {
		t.Fatal("deploying directly to promoted succeeded")
	}
}
