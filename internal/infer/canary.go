package infer

import (
	"fmt"
	"sync"

	"repro/internal/fault"
	"repro/internal/monitor"
	"repro/internal/onnx"
)

// Stage is the lifecycle state of a candidate deployment.
type Stage int

// Candidate deployment stages. Shadow mirrors traffic and reports stats but
// takes no action on its own; Canary mirrors traffic and, once enough
// samples accumulate, automatically promotes a healthy candidate or rolls
// back a drifted one. Promoted and RolledBack are terminal.
const (
	StageNone Stage = iota
	StageShadow
	StageCanary
	StagePromoted
	StageRolledBack
)

func (s Stage) String() string {
	switch s {
	case StageNone:
		return "none"
	case StageShadow:
		return "shadow"
	case StageCanary:
		return "canary"
	case StagePromoted:
		return "promoted"
	case StageRolledBack:
		return "rolled-back"
	default:
		return fmt.Sprintf("Stage(%d)", int(s))
	}
}

// ParseStage parses an initial candidate stage name as accepted by
// Plane.Deploy ("shadow" or "canary").
func ParseStage(s string) (Stage, error) {
	switch s {
	case "shadow":
		return StageShadow, nil
	case "canary":
		return StageCanary, nil
	default:
		return StageNone, fmt.Errorf("infer: unknown deploy stage %q (want shadow or canary)", s)
	}
}

// mirrorWindow caps the retained score windows; the gate only needs enough
// mass for a stable PSI, not the full traffic history.
const mirrorWindow = 4096

// deployment tracks one candidate model version scoring mirrored traffic.
type deployment struct {
	mu      sync.Mutex
	model   string
	version int
	stage   Stage
	sess    *onnx.Session

	// Mirrored evidence: the serving model's scores (the reference
	// distribution), the candidate's scores, and their running absolute
	// disagreement.
	primary    []float64
	candidate  []float64
	samples    int64
	absDiffSum float64

	// Last gate evaluation.
	psi       float64
	agreement float64
	reason    string
}

// DeploymentStatus is the externally visible state of one candidate.
type DeploymentStatus struct {
	Model     string  `json:"model"`
	Version   int     `json:"version"`
	Stage     string  `json:"stage"`
	Samples   int64   `json:"samples"`
	PSI       float64 `json:"psi"`
	Agreement float64 `json:"agreement"`
	Reason    string  `json:"reason,omitempty"`
}

// observe feeds one mirrored batch of primary scores and scores the same
// batch with the candidate. Returns the gate's decision when the candidate
// is in the canary stage and has seen enough traffic: +1 promote, -1 roll
// back, 0 keep watching.
func (d *deployment) observe(b *onnx.Batch, primary []float64, minSamples int64, maxDisagreement float64) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stage != StageShadow && d.stage != StageCanary {
		return 0
	}
	cand := make([]float64, b.N)
	if err := d.sess.RunInto(b, cand); err != nil {
		// A candidate that cannot score is a failed canary, not a failed
		// query: record and let the gate roll it back.
		d.reason = fmt.Sprintf("candidate scoring failed: %v", err)
		if d.stage == StageCanary {
			d.stage = StageRolledBack
			return -1
		}
		return 0
	}
	// The infer.canary failpoint simulates a drifting candidate: injected
	// windows get their mirrored scores skewed so chaos drills can watch
	// the gate trip without training a genuinely bad model.
	if err := fault.Inject("infer.canary"); err != nil {
		for i := range cand {
			cand[i] = skewScore(cand[i])
		}
	}
	for i := 0; i < b.N; i++ {
		d.absDiffSum += absDiff(primary[i], cand[i])
	}
	d.samples += int64(b.N)
	d.primary = appendWindow(d.primary, primary)
	d.candidate = appendWindow(d.candidate, cand)

	if psi, _, err := monitor.PSIBetween(d.primary, d.candidate); err == nil {
		d.psi = psi
	}
	if d.samples > 0 {
		d.agreement = d.absDiffSum / float64(d.samples)
	}
	if d.stage != StageCanary || d.samples < minSamples {
		return 0
	}
	status := monitor.StatusOf(d.psi)
	if status == monitor.Stable && d.agreement <= maxDisagreement {
		d.stage = StagePromoted
		d.reason = fmt.Sprintf("gate passed: psi=%.4f agreement=%.4f over %d samples", d.psi, d.agreement, d.samples)
		return +1
	}
	d.stage = StageRolledBack
	d.reason = fmt.Sprintf("gate failed: psi=%.4f (%s) agreement=%.4f over %d samples", d.psi, status, d.agreement, d.samples)
	return -1
}

func (d *deployment) status() DeploymentStatus {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DeploymentStatus{
		Model:     d.model,
		Version:   d.version,
		Stage:     d.stage.String(),
		Samples:   d.samples,
		PSI:       d.psi,
		Agreement: d.agreement,
		Reason:    d.reason,
	}
}

func (d *deployment) currentStage() Stage {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stage
}

// setStage transitions manually (admin promote/rollback).
func (d *deployment) setStage(s Stage, reason string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.stage = s
	d.reason = reason
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// skewScore pushes a score toward the opposite half of [0,1] — a crude but
// effective drift for chaos drills.
func skewScore(v float64) float64 {
	v += 0.5
	if v > 1 {
		v -= 1
	}
	return v
}

func appendWindow(w, scores []float64) []float64 {
	w = append(w, scores...)
	if len(w) > mirrorWindow {
		w = w[len(w)-mirrorWindow:]
	}
	return w
}
