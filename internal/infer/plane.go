// Package infer is the production inference plane: the model-serving layer
// between the engine's PREDICT operator and the scorer backends. It adds
// the three capabilities a per-call scoring path lacks at production
// concurrency — an async micro-batcher that coalesces PREDICT calls from
// concurrent sessions and cursors into single vectorized backend calls, a
// score cache keyed on feature-vector hash and model generation (guarded,
// like the plan cache, by revalidation rather than eager invalidation), and
// versioned candidate deployments whose mirrored traffic feeds the
// internal/monitor PSI and agreement stats that gate automatic promotion or
// rollback — closing the observe-but-never-act loop.
//
// The plane is strictly an accelerator and a governor: a batcher failure
// (including an armed infer.batch failpoint) degrades that request to
// direct scoring, and a nil plane leaves the engine's original paths
// untouched, so PREDICT never wedges behind it.
package infer

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/onnx"
)

// Registry is the slice of the model registry the plane depends on: the
// monotonic generation that keys cached state and graph resolution by
// "name" or "name@version".
type Registry interface {
	Generation() int64
	GraphFor(ref string) (*onnx.Graph, error)
}

// Config tunes the plane; zero values take the documented defaults.
type Config struct {
	// BatchWindow is the micro-batch latency bound: the longest a queued
	// request waits for peers before the window is scored. Default 2ms.
	BatchWindow time.Duration
	// BatchRows is the micro-batch size bound, and also the threshold at
	// or above which a request bypasses coalescing entirely (it is already
	// a full window riding the morsel batch granularity). Default 256.
	BatchRows int
	// CacheSize is the score-cache capacity in entries; 0 takes the
	// default 65536, negative disables caching.
	CacheSize int
	// CanaryMinSamples is the mirrored traffic the canary gate requires
	// before acting. Default 500.
	CanaryMinSamples int64
	// CanaryMaxDisagreement is the largest mean |candidate - primary| the
	// gate tolerates when promoting. Default 0.05.
	CanaryMaxDisagreement float64
	// Promote is called when a canary passes its gate (and by manual
	// promotion); typically core wires it to ModelRegistry.Promote with
	// the production stage. The registry-generation bump it causes is what
	// invalidates cached scores of the displaced version.
	Promote func(model string, version int) error
	// Remote optionally builds a remote scorer per graph (e.g. the HTTP
	// scoring-service client flock-serve configures): when set, backend
	// calls go through it — one round trip per micro-batch window —
	// instead of the in-process native session.
	Remote func(g *onnx.Graph) (onnx.Scorer, error)
}

func (c Config) withDefaults() Config {
	if c.BatchWindow == 0 {
		c.BatchWindow = 2 * time.Millisecond
	}
	if c.BatchRows == 0 {
		c.BatchRows = 256
	}
	if c.CacheSize == 0 {
		c.CacheSize = 65536
	}
	if c.CanaryMinSamples == 0 {
		c.CanaryMinSamples = 500
	}
	if c.CanaryMaxDisagreement == 0 {
		c.CanaryMaxDisagreement = 0.05
	}
	return c
}

// Plane is the inference plane. It is safe for concurrent use; one Plane
// serves every session of a Flock instance.
type Plane struct {
	cfg Config
	reg Registry

	cache *scoreCache // nil when disabled

	mu       sync.RWMutex
	closed   bool
	fps      map[*onnx.Graph]uint64 // per-plan fingerprint memo
	backends map[uint64]scoreFn     // keyed by graph fingerprint
	batchers map[uint64]*batcher    // keyed by graph fingerprint
	deps     map[string]*deployment

	direct      atomic.Int64 // requests scored without coalescing
	coalesced   atomic.Int64 // requests routed through the batcher
	degraded    atomic.Int64 // batcher failures degraded to direct scoring
	cacheFaults atomic.Int64 // infer.cache failpoint trips
	promotions  atomic.Int64
	rollbacks   atomic.Int64
}

// New builds a plane over the registry.
func New(reg Registry, cfg Config) *Plane {
	cfg = cfg.withDefaults()
	p := &Plane{
		cfg:      cfg,
		reg:      reg,
		fps:      map[*onnx.Graph]uint64{},
		backends: map[uint64]scoreFn{},
		batchers: map[uint64]*batcher{},
		deps:     map[string]*deployment{},
	}
	if cfg.CacheSize > 0 {
		p.cache = newScoreCache(cfg.CacheSize)
	}
	return p
}

// Close stops the dispatchers. In-flight requests complete; later requests
// degrade to direct scoring.
func (p *Plane) Close() {
	p.mu.Lock()
	p.closed = true
	bas := make([]*batcher, 0, len(p.batchers))
	for _, ba := range p.batchers {
		bas = append(bas, ba)
	}
	p.mu.Unlock()
	for _, ba := range bas {
		ba.close()
	}
}

// Score scores the batch for model through the plane — the engine's
// PredictPlane hook. g is the planned graph (possibly sparsity-pruned, so
// it is scored as given rather than re-resolved), b the columnar inputs,
// and out receives one score per row.
func (p *Plane) Score(ctx context.Context, model string, g *onnx.Graph, b *onnx.Batch, out []float64) error {
	n := b.N
	if n == 0 {
		return nil
	}
	// The generation is captured once per call: in-flight work planned
	// against this generation may serve and fill entries stamped with it,
	// while any later lookup that observes a bump treats them as stale.
	gen := p.reg.Generation()
	// The content fingerprint identifies "this model version" across the
	// per-plan graph clones the planner hands us — it keys cache entries,
	// backends, and the shared micro-batcher.
	fp := p.fingerprintOf(g)

	cacheOK := p.cache != nil
	if cacheOK {
		if err := fault.Inject("infer.cache"); err != nil {
			// An unavailable cache costs recomputation, never correctness.
			p.cacheFaults.Add(1)
			cacheOK = false
		}
	}
	var (
		hashes   []uint64
		missRows []int
	)
	if cacheOK {
		hashes = make([]uint64, n)
		missRows = make([]int, 0, n)
		for i := 0; i < n; i++ {
			hashes[i] = hashRow(b, i)
			if s, ok := p.cache.lookup(model, hashes[i], gen, fp); ok {
				out[i] = s
			} else {
				missRows = append(missRows, i)
			}
		}
	}

	if !cacheOK || len(missRows) == n {
		if err := p.scoreBackend(ctx, g, fp, b, out[:n]); err != nil {
			return err
		}
	} else if len(missRows) > 0 {
		sub := gatherBatch(b, missRows)
		subOut := make([]float64, len(missRows))
		if err := p.scoreBackend(ctx, g, fp, sub, subOut); err != nil {
			return err
		}
		for k, i := range missRows {
			out[i] = subOut[k]
		}
	}
	if cacheOK {
		for _, i := range missRows {
			p.cache.store(model, hashes[i], gen, fp, out[i])
		}
	}
	p.mirror(model, b, out[:n])
	return nil
}

// scoreFn is one graph's resolved backend: a vectorized native session or
// a remote scorer round trip.
type scoreFn func(b *onnx.Batch, out []float64) error

// scoreBackend routes one (sub-)batch to the backend: full windows score
// directly, small batches coalesce through the model's micro-batcher, and
// any batcher failure — injected or real — degrades to direct scoring.
func (p *Plane) scoreBackend(ctx context.Context, g *onnx.Graph, fp uint64, b *onnx.Batch, out []float64) error {
	fn, err := p.backendFor(g, fp)
	if err != nil {
		return err
	}
	if b.N >= p.cfg.BatchRows || p.isClosed() {
		p.direct.Add(1)
		return fn(b, out)
	}
	ba := p.batcherFor(fp, fn)
	if ba != nil {
		err := ba.scoreBatched(ctx, b, out)
		if err == nil {
			p.coalesced.Add(1)
			return nil
		}
		if ctx != nil && ctx.Err() != nil {
			return ctx.Err()
		}
		// Batcher failure (failpoint, stopped dispatcher, backend error
		// inside the merged window): degrade this request to a direct
		// call rather than failing the query.
		p.degraded.Add(1)
	}
	p.direct.Add(1)
	return fn(b, out)
}

func (p *Plane) isClosed() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.closed
}

// fingerprintOf returns the content fingerprint for a planned graph,
// memoized per pointer: each query plan clones the deployed graph, so the
// memo is bounded by concurrent plan lifetimes plus churn, and is reset
// before it can accumulate without bound.
func (p *Plane) fingerprintOf(g *onnx.Graph) uint64 {
	p.mu.RLock()
	fp, ok := p.fps[g]
	p.mu.RUnlock()
	if ok {
		return fp
	}
	fp = fingerprint(g)
	p.mu.Lock()
	if len(p.fps) > 4096 {
		p.fps = map[*onnx.Graph]uint64{}
	}
	p.fps[g] = fp
	p.mu.Unlock()
	return fp
}

// backendFor returns the cached backend for a graph's content. Deployed
// graphs are immutable and content-identical clones score identically, so
// fingerprint keying is sound; the map is reset when retrains accumulate
// dead versions.
func (p *Plane) backendFor(g *onnx.Graph, fp uint64) (scoreFn, error) {
	p.mu.RLock()
	fn := p.backends[fp]
	p.mu.RUnlock()
	if fn != nil {
		return fn, nil
	}
	if p.cfg.Remote != nil {
		scorer, err := p.cfg.Remote(g)
		if err != nil {
			return nil, err
		}
		fn = func(b *onnx.Batch, out []float64) error {
			scores, err := scorer.Score(b)
			if err != nil {
				return err
			}
			copy(out, scores)
			return nil
		}
	} else {
		sess, err := onnx.NewSession(g)
		if err != nil {
			return nil, err
		}
		fn = sess.RunInto
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if have := p.backends[fp]; have != nil {
		return have, nil
	}
	if len(p.backends) > 128 {
		p.backends = map[uint64]scoreFn{}
	}
	p.backends[fp] = fn
	return fn, nil
}

// batcherFor returns the micro-batcher for a graph fingerprint, creating
// it on first use (nil once the plane is closed). Keying by content means
// every concurrent session and cursor scoring the same model version
// shares one batcher — which is what makes cross-query coalescing work.
func (p *Plane) batcherFor(fp uint64, fn scoreFn) *batcher {
	p.mu.RLock()
	ba := p.batchers[fp]
	closed := p.closed
	p.mu.RUnlock()
	if ba != nil || closed {
		return ba
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	if have := p.batchers[fp]; have != nil {
		return have
	}
	ba = newBatcher(p.cfg.BatchRows, p.cfg.BatchWindow, fn)
	p.batchers[fp] = ba
	return ba
}

// gatherBatch extracts the given rows of b into a dense batch.
func gatherBatch(b *onnx.Batch, rows []int) *onnx.Batch {
	sub := &onnx.Batch{N: len(rows), Cols: make([]onnx.Column, len(b.Cols))}
	for c := range b.Cols {
		if b.Cols[c].Nums != nil {
			nums := make([]float64, len(rows))
			for k, i := range rows {
				nums[k] = b.Cols[c].Nums[i]
			}
			sub.Cols[c].Nums = nums
		} else {
			strs := make([]string, len(rows))
			for k, i := range rows {
				strs[k] = b.Cols[c].Strs[i]
			}
			sub.Cols[c].Strs = strs
		}
	}
	return sub
}

// mirror feeds a scored batch to the model's candidate deployment, if any,
// and applies the gate's decision.
func (p *Plane) mirror(model string, b *onnx.Batch, primary []float64) {
	p.mu.RLock()
	d := p.deps[model]
	p.mu.RUnlock()
	if d == nil {
		return
	}
	switch d.observe(b, primary, p.cfg.CanaryMinSamples, p.cfg.CanaryMaxDisagreement) {
	case +1:
		if p.cfg.Promote != nil {
			if err := p.cfg.Promote(model, d.version); err != nil {
				d.setStage(StageRolledBack, fmt.Sprintf("promotion failed: %v", err))
				p.rollbacks.Add(1)
				return
			}
		}
		p.promotions.Add(1)
	case -1:
		p.rollbacks.Add(1)
	}
}

// Deploy registers version as the candidate for model in the given stage
// (StageShadow or StageCanary), replacing any previous candidate.
func (p *Plane) Deploy(model string, version int, stage Stage) (DeploymentStatus, error) {
	if stage != StageShadow && stage != StageCanary {
		return DeploymentStatus{}, fmt.Errorf("infer: deploy stage must be shadow or canary, got %s", stage)
	}
	g, err := p.reg.GraphFor(fmt.Sprintf("%s@%d", model, version))
	if err != nil {
		return DeploymentStatus{}, err
	}
	sess, err := onnx.NewSession(g)
	if err != nil {
		return DeploymentStatus{}, err
	}
	d := &deployment{model: model, version: version, stage: stage, sess: sess}
	p.mu.Lock()
	p.deps[model] = d
	p.mu.Unlock()
	return d.status(), nil
}

// PromoteCandidate manually promotes the model's candidate, regardless of
// the gate's stats.
func (p *Plane) PromoteCandidate(model string) (DeploymentStatus, error) {
	d, err := p.candidateFor(model)
	if err != nil {
		return DeploymentStatus{}, err
	}
	if st := d.currentStage(); st != StageShadow && st != StageCanary {
		return d.status(), fmt.Errorf("infer: candidate for %s is %s, not promotable", model, st)
	}
	if p.cfg.Promote != nil {
		if err := p.cfg.Promote(model, d.version); err != nil {
			return d.status(), err
		}
	}
	d.setStage(StagePromoted, "manual promotion")
	p.promotions.Add(1)
	return d.status(), nil
}

// RollbackCandidate manually rolls the model's candidate back; mirrored
// scoring stops.
func (p *Plane) RollbackCandidate(model string) (DeploymentStatus, error) {
	d, err := p.candidateFor(model)
	if err != nil {
		return DeploymentStatus{}, err
	}
	d.setStage(StageRolledBack, "manual rollback")
	p.rollbacks.Add(1)
	return d.status(), nil
}

func (p *Plane) candidateFor(model string) (*deployment, error) {
	p.mu.RLock()
	d := p.deps[model]
	p.mu.RUnlock()
	if d == nil {
		return nil, fmt.Errorf("infer: no candidate deployment for model %q", model)
	}
	return d, nil
}

// Deployments returns the status of every candidate, sorted by model.
func (p *Plane) Deployments() []DeploymentStatus {
	p.mu.RLock()
	out := make([]DeploymentStatus, 0, len(p.deps))
	for _, d := range p.deps {
		out = append(out, d.status())
	}
	p.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Model < out[j].Model })
	return out
}

// Gauges exports the plane's metrics in the server's gauge-map convention.
// Canary state encodes the Stage enum: 1 shadow, 2 canary, 3 promoted,
// 4 rolled-back.
func (p *Plane) Gauges() map[string]float64 {
	m := map[string]float64{}
	var calls, rows int64
	p.mu.RLock()
	for _, ba := range p.batchers {
		c, r := ba.stats()
		calls += c
		rows += r
	}
	p.mu.RUnlock()
	m["flock_infer_batch_calls_total"] = float64(calls)
	m["flock_infer_batch_rows_total"] = float64(rows)
	if calls > 0 {
		m["flock_infer_batch_occupancy"] = float64(rows) / float64(calls)
	} else {
		m["flock_infer_batch_occupancy"] = 0
	}
	if p.cache != nil {
		hits, misses, stale := p.cache.stats()
		m["flock_infer_cache_hits_total"] = float64(hits)
		m["flock_infer_cache_misses_total"] = float64(misses)
		m["flock_infer_cache_stale_total"] = float64(stale)
		m["flock_infer_cache_size"] = float64(p.cache.len())
	}
	m["flock_infer_direct_total"] = float64(p.direct.Load())
	m["flock_infer_coalesced_total"] = float64(p.coalesced.Load())
	m["flock_infer_degraded_total"] = float64(p.degraded.Load())
	m["flock_infer_cache_faults_total"] = float64(p.cacheFaults.Load())
	m["flock_infer_promotions_total"] = float64(p.promotions.Load())
	m["flock_infer_rollbacks_total"] = float64(p.rollbacks.Load())
	for _, st := range p.Deployments() {
		label := fmt.Sprintf("{model=%q}", st.Model)
		var stage Stage
		switch st.Stage {
		case StageShadow.String():
			stage = StageShadow
		case StageCanary.String():
			stage = StageCanary
		case StagePromoted.String():
			stage = StagePromoted
		case StageRolledBack.String():
			stage = StageRolledBack
		}
		m["flock_infer_canary_state"+label] = float64(stage)
		m["flock_infer_canary_psi"+label] = st.PSI
		m["flock_infer_canary_agreement"+label] = st.Agreement
	}
	return m
}
