package infer

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/onnx"
	"repro/internal/workload"
)

// benchGraph exports the demo churn pipeline flock-serve deploys: a
// 50-tree GBM over scaled numerics, a one-hot region, and a hashed text
// column — per-call scoring cost in the microseconds, like any real model.
func benchGraph(b testing.TB) *onnx.Graph {
	b.Helper()
	pipe, err := workload.TrainScoringPipeline(1000, 42, 50, true)
	if err != nil {
		b.Fatal(err)
	}
	g, err := onnx.Export(pipe)
	if err != nil {
		b.Fatal(err)
	}
	return g
}

// benchRows synthesizes single-row batches drawn from a small population,
// the shape row-mode PREDICT UDF traffic has: many concurrent sessions,
// one feature vector per call, heavy value reuse across calls.
func benchRows(n int) []*onnx.Batch {
	rows := make([]*onnx.Batch, n)
	regions := []string{"us", "eu", "apac", "latam", "mea", "anz"}
	notes := []string{
		"renewal call scheduled support ticket open",
		"asked about enterprise tier pricing",
		"quiet account no recent activity",
		"escalated billing dispute twice this quarter",
	}
	for i := range rows {
		rows[i] = &onnx.Batch{
			N: 1,
			Cols: []onnx.Column{
				{Nums: []float64{20 + float64(i%50)}},
				{Nums: []float64{30000 + float64(i%40)*2500}},
				{Nums: []float64{float64(i % 10)}},
				{Strs: []string{regions[i%len(regions)]}},
				{Strs: []string{notes[i%len(notes)]}},
			},
		}
	}
	return rows
}

// BenchmarkPredict drives 32 concurrent sessions of single-row PREDICT
// calls — the acceptance workload for the inference plane. mode=percall
// scores each call directly through a shared session (the engine's
// pre-plane row path); mode=plane routes the same calls through the
// micro-batcher and score cache. The acceptance bar is >=3x throughput
// for mode=plane.
func BenchmarkPredict(b *testing.B) {
	g := benchGraph(b)
	rows := benchRows(512)
	const sessions = 32

	run := func(b *testing.B, score func(ctx context.Context, rowIdx int, out []float64) error) {
		b.ReportAllocs()
		var wg sync.WaitGroup
		per := b.N / sessions
		if per == 0 {
			per = 1
		}
		errCh := make(chan error, sessions)
		for s := 0; s < sessions; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				out := make([]float64, 1)
				for i := 0; i < per; i++ {
					if err := score(context.Background(), (s*per+i)%len(rows), out); err != nil {
						select {
						case errCh <- err:
						default:
						}
						return
					}
				}
			}(s)
		}
		wg.Wait()
		select {
		case err := <-errCh:
			b.Fatal(err)
		default:
		}
	}

	b.Run("mode=percall", func(b *testing.B) {
		sess, err := onnx.NewSession(g)
		if err != nil {
			b.Fatal(err)
		}
		run(b, func(_ context.Context, i int, out []float64) error {
			return sess.RunInto(rows[i], out)
		})
	})

	b.Run("mode=plane", func(b *testing.B) {
		reg := newFakeRegistry()
		reg.redeploy(g.Name, g)
		p := New(reg, Config{BatchWindow: 200 * time.Microsecond})
		defer p.Close()
		run(b, func(ctx context.Context, i int, out []float64) error {
			return p.Score(ctx, g.Name, g, rows[i], out)
		})
	})
}

// TestPredictThroughputBar is the acceptance check behind BenchmarkPredict:
// 32 concurrent sessions through the plane must beat per-call scoring by
// >=3x. It times a fixed work quota under both modes rather than trusting
// a single benchtime sample. Skipped in -short runs (it is a benchmark in
// test clothing, deliberately: CI's race/chaos lanes skip it, the bench
// lane runs BenchmarkPredict proper).
func TestPredictThroughputBar(t *testing.T) {
	if testing.Short() {
		t.Skip("throughput bar needs a quiet machine")
	}
	g := benchGraph(t)
	rows := benchRows(512)
	const sessions = 32
	const perSession = 400

	elapse := func(score func(i int, out []float64) error) (time.Duration, error) {
		var wg sync.WaitGroup
		errCh := make(chan error, sessions)
		start := time.Now()
		for s := 0; s < sessions; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				out := make([]float64, 1)
				for i := 0; i < perSession; i++ {
					if err := score((s*perSession+i)%len(rows), out); err != nil {
						select {
						case errCh <- err:
						default:
						}
						return
					}
				}
			}(s)
		}
		wg.Wait()
		select {
		case err := <-errCh:
			return 0, err
		default:
		}
		return time.Since(start), nil
	}

	sess, err := onnx.NewSession(g)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := elapse(func(i int, out []float64) error { return sess.RunInto(rows[i], out) })
	if err != nil {
		t.Fatal(err)
	}

	reg := newFakeRegistry()
	reg.redeploy(g.Name, g)
	p := New(reg, Config{BatchWindow: 200 * time.Microsecond})
	defer p.Close()
	// Warm pass fills the score cache; the measured pass is steady state.
	if _, err := elapse(func(i int, out []float64) error {
		return p.Score(context.Background(), g.Name, g, rows[i], out)
	}); err != nil {
		t.Fatal(err)
	}
	plane, err := elapse(func(i int, out []float64) error {
		return p.Score(context.Background(), g.Name, g, rows[i], out)
	})
	if err != nil {
		t.Fatal(err)
	}

	speedup := float64(direct) / float64(plane)
	t.Logf("percall=%v plane=%v speedup=%.1fx gauges=%v", direct, plane, speedup, fmt.Sprint(p.Gauges()["flock_infer_cache_hits_total"]))
	if speedup < 3 {
		t.Fatalf("plane speedup %.2fx under 32 concurrent sessions, want >=3x (percall=%v plane=%v)", speedup, direct, plane)
	}
}
