// Package onnx implements a model-graph intermediate representation and an
// optimizing runtime in the spirit of ONNX + ONNX Runtime: trained pipelines
// are exported into a graph of featurizer and model operators, the graph is
// serializable (models as data!), and a Session executes it over columnar
// batches with pre-planned buffers.
//
// The same Session code runs standalone (the Figure-4 "ORT" configuration,
// behind the remote-scoring pipe in remote.go) and embedded inside the query
// engine (the "SONNX" configuration), which is exactly the property the
// paper's comparison relies on.
package onnx

import (
	"errors"
	"fmt"

	"repro/internal/ml"
)

// ColumnKind mirrors ml.ColKind for graph input typing.
type ColumnKind = ml.ColKind

// OpType enumerates the graph operators.
type OpType int

// Graph operators. The featurizer ops (Scaler, OneHot, HashText) each
// consume one input column and produce a block of dense features; the model
// ops consume the concatenated feature matrix and produce the output vector.
const (
	OpScaler OpType = iota
	OpOneHot
	OpHashText
	OpLinear       // w·x + b, optional sigmoid
	OpTreeEnsemble // base + rate * sum(trees), optional sigmoid
)

func (o OpType) String() string {
	switch o {
	case OpScaler:
		return "Scaler"
	case OpOneHot:
		return "OneHotEncoder"
	case OpHashText:
		return "HashingVectorizer"
	case OpLinear:
		return "LinearModel"
	case OpTreeEnsemble:
		return "TreeEnsemble"
	default:
		return fmt.Sprintf("OpType(%d)", int(o))
	}
}

// Tree is a flattened decision tree (same layout as ml.DecisionTree).
type Tree struct {
	Feature   []int32
	Threshold []float64
	Left      []int32 // -1 marks a leaf
	Right     []int32
	Value     []float64
}

// FeatNode is one featurization operator bound to an input column.
type FeatNode struct {
	Op     OpType
	Input  string // input column name
	Offset int    // first output feature index (assigned by Relayout)

	// Scaler parameters.
	Mean, Scale float64
	// OneHot parameters.
	Categories []string
	// HashText parameters.
	Buckets int
}

// Width returns the number of features the node emits.
func (n *FeatNode) Width() int {
	switch n.Op {
	case OpScaler:
		return 1
	case OpOneHot:
		return len(n.Categories)
	case OpHashText:
		return n.Buckets
	default:
		return 0
	}
}

// ModelNode is the final scoring operator over the feature matrix.
type ModelNode struct {
	Op OpType

	// Linear parameters.
	Coeff     []float64
	Intercept float64

	// TreeEnsemble parameters.
	Trees []Tree
	Base  float64
	Rate  float64

	// PostSigmoid applies the logistic squash to the raw score
	// (classifier probability output).
	PostSigmoid bool
}

// InputSpec declares one graph input column.
type InputSpec struct {
	Name string
	Kind ColumnKind
}

// Graph is a complete inference pipeline: typed input columns, featurizer
// nodes, and a single model node producing the named output.
type Graph struct {
	Name   string
	Inputs []InputSpec
	Feats  []FeatNode
	Model  ModelNode
	Output string // output column name, e.g. "score"
}

// Width returns the total feature-matrix width.
func (g *Graph) Width() int {
	var w int
	for i := range g.Feats {
		w += g.Feats[i].Width()
	}
	return w
}

// Relayout assigns feature offsets after any structural change.
func (g *Graph) Relayout() {
	off := 0
	for i := range g.Feats {
		g.Feats[i].Offset = off
		off += g.Feats[i].Width()
	}
}

// InputNames returns the input column names in declaration order.
func (g *Graph) InputNames() []string {
	names := make([]string, len(g.Inputs))
	for i, in := range g.Inputs {
		names[i] = in.Name
	}
	return names
}

// inputKind looks up the declared kind for a column.
func (g *Graph) inputKind(name string) (ColumnKind, bool) {
	for _, in := range g.Inputs {
		if in.Name == name {
			return in.Kind, true
		}
	}
	return 0, false
}

// Validate checks structural invariants: every featurizer input is declared,
// kinds match operators, offsets are consistent, the model covers the full
// width, and tree arrays are well formed.
func (g *Graph) Validate() error {
	if g.Output == "" {
		return errors.New("onnx: graph has no output name")
	}
	off := 0
	for i := range g.Feats {
		n := &g.Feats[i]
		kind, ok := g.inputKind(n.Input)
		if !ok {
			return fmt.Errorf("onnx: featurizer %d reads undeclared input %q", i, n.Input)
		}
		var want ColumnKind
		switch n.Op {
		case OpScaler:
			want = ml.KindNumeric
		case OpOneHot:
			want = ml.KindCategorical
		case OpHashText:
			want = ml.KindText
		default:
			return fmt.Errorf("onnx: node %d: %v is not a featurizer op", i, n.Op)
		}
		if kind != want {
			return fmt.Errorf("onnx: featurizer %d (%v) over %v column %q", i, n.Op, kind, n.Input)
		}
		if n.Offset != off {
			return fmt.Errorf("onnx: featurizer %d offset %d, want %d (run Relayout)", i, n.Offset, off)
		}
		off += n.Width()
	}
	switch g.Model.Op {
	case OpLinear:
		if len(g.Model.Coeff) != off {
			return fmt.Errorf("onnx: linear model has %d coefficients over width-%d features", len(g.Model.Coeff), off)
		}
	case OpTreeEnsemble:
		for ti, tr := range g.Model.Trees {
			n := len(tr.Feature)
			if len(tr.Threshold) != n || len(tr.Left) != n || len(tr.Right) != n || len(tr.Value) != n {
				return fmt.Errorf("onnx: tree %d has ragged arrays", ti)
			}
			for j := 0; j < n; j++ {
				if tr.Left[j] >= 0 {
					if int(tr.Left[j]) >= n || int(tr.Right[j]) >= n {
						return fmt.Errorf("onnx: tree %d node %d child out of range", ti, j)
					}
					if int(tr.Feature[j]) >= off || tr.Feature[j] < 0 {
						return fmt.Errorf("onnx: tree %d node %d tests feature %d over width-%d features", ti, j, tr.Feature[j], off)
					}
				}
			}
		}
	default:
		return fmt.Errorf("onnx: %v is not a model op", g.Model.Op)
	}
	return nil
}

// UsedFeatures returns the sorted set of feature indices the model actually
// reads (non-zero linear coefficients, or features tested by any tree).
func (g *Graph) UsedFeatures() []int {
	switch g.Model.Op {
	case OpLinear:
		var used []int
		for i, c := range g.Model.Coeff {
			if c != 0 {
				used = append(used, i)
			}
		}
		return used
	case OpTreeEnsemble:
		seen := map[int]bool{}
		for _, tr := range g.Model.Trees {
			for j := range tr.Feature {
				if tr.Left[j] >= 0 {
					seen[int(tr.Feature[j])] = true
				}
			}
		}
		used := make([]int, 0, len(seen))
		for f := 0; len(used) < len(seen); f++ {
			if seen[f] {
				used = append(used, f)
			}
		}
		return used
	default:
		return nil
	}
}

// Clone returns a deep copy of the graph, so transformations never alias
// the deployed original (models are immutable derived data).
func (g *Graph) Clone() *Graph {
	c := &Graph{Name: g.Name, Output: g.Output}
	c.Inputs = append([]InputSpec(nil), g.Inputs...)
	c.Feats = make([]FeatNode, len(g.Feats))
	for i, n := range g.Feats {
		n.Categories = append([]string(nil), n.Categories...)
		c.Feats[i] = n
	}
	m := g.Model
	m.Coeff = append([]float64(nil), m.Coeff...)
	m.Trees = make([]Tree, len(g.Model.Trees))
	for i, tr := range g.Model.Trees {
		m.Trees[i] = Tree{
			Feature:   append([]int32(nil), tr.Feature...),
			Threshold: append([]float64(nil), tr.Threshold...),
			Left:      append([]int32(nil), tr.Left...),
			Right:     append([]int32(nil), tr.Right...),
			Value:     append([]float64(nil), tr.Value...),
		}
	}
	c.Model = m
	return c
}

// NumNodes returns the operator count (featurizers + model); a rough model
// size proxy used in registry listings.
func (g *Graph) NumNodes() int { return len(g.Feats) + 1 }
