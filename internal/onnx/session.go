package onnx

import (
	"fmt"
	"sync"

	"repro/internal/ml"
)

// Column is one columnar input to a Session: numeric columns use Nums,
// categorical and text columns use Strs.
type Column struct {
	Nums []float64
	Strs []string
}

// Batch is a columnar slice of rows to score. Cols must align with the
// graph's Inputs declaration.
type Batch struct {
	Cols []Column
	N    int
}

// Session is a planned, reusable executor for one Graph. It precomputes
// per-node dispatch (category indices, offsets) at construction so Run does
// no per-call planning — the "compile into highly optimized code" step.
// Sessions are safe for concurrent use by multiple goroutines.
type Session struct {
	graph  *Graph
	width  int
	onehot []map[string]int // per featurizer node; nil for non-onehot
	pool   sync.Pool        // scratch feature buffers
}

// NewSession validates and plans the graph.
func NewSession(g *Graph) (*Session, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	s := &Session{graph: g, width: g.Width()}
	s.onehot = make([]map[string]int, len(g.Feats))
	for i := range g.Feats {
		if g.Feats[i].Op == OpOneHot {
			idx := make(map[string]int, len(g.Feats[i].Categories))
			for slot, c := range g.Feats[i].Categories {
				idx[c] = slot
			}
			s.onehot[i] = idx
		}
	}
	s.pool.New = func() any { return &[]float64{} }
	return s, nil
}

// Graph returns the session's (immutable) graph.
func (s *Session) Graph() *Graph { return s.graph }

// Width returns the feature-matrix width.
func (s *Session) Width() int { return s.width }

// Run scores the batch and returns one value per row.
func (s *Session) Run(b *Batch) ([]float64, error) {
	out := make([]float64, b.N)
	if err := s.RunInto(b, out); err != nil {
		return nil, err
	}
	return out, nil
}

// RunInto scores the batch into a caller-provided slice of length b.N.
func (s *Session) RunInto(b *Batch, out []float64) error {
	if len(b.Cols) != len(s.graph.Inputs) {
		return fmt.Errorf("onnx: batch has %d columns, graph wants %d", len(b.Cols), len(s.graph.Inputs))
	}
	if len(out) != b.N {
		return fmt.Errorf("onnx: output slice has %d slots for %d rows", len(out), b.N)
	}
	bufp := s.pool.Get().(*[]float64)
	need := b.N * s.width
	if cap(*bufp) < need {
		*bufp = make([]float64, need)
	}
	feats := (*bufp)[:need]
	for i := range feats {
		feats[i] = 0
	}
	defer s.pool.Put(bufp)

	if err := s.featurize(b, feats); err != nil {
		return err
	}
	s.score(feats, b.N, out)
	return nil
}

// colFor maps the featurizer node's input name to its batch column.
func (s *Session) colFor(b *Batch, name string) (*Column, error) {
	for i := range s.graph.Inputs {
		if s.graph.Inputs[i].Name == name {
			return &b.Cols[i], nil
		}
	}
	return nil, fmt.Errorf("onnx: input column %q missing from batch", name)
}

func (s *Session) featurize(b *Batch, feats []float64) error {
	w := s.width
	for ni := range s.graph.Feats {
		node := &s.graph.Feats[ni]
		col, err := s.colFor(b, node.Input)
		if err != nil {
			return err
		}
		off := node.Offset
		switch node.Op {
		case OpScaler:
			if len(col.Nums) < b.N {
				return fmt.Errorf("onnx: numeric column %q has %d values for %d rows", node.Input, len(col.Nums), b.N)
			}
			mean, scale := node.Mean, node.Scale
			for r := 0; r < b.N; r++ {
				feats[r*w+off] = (col.Nums[r] - mean) / scale
			}
		case OpOneHot:
			if len(col.Strs) < b.N {
				return fmt.Errorf("onnx: categorical column %q has %d values for %d rows", node.Input, len(col.Strs), b.N)
			}
			idx := s.onehot[ni]
			for r := 0; r < b.N; r++ {
				if slot, ok := idx[col.Strs[r]]; ok {
					feats[r*w+off+slot] = 1
				}
			}
		case OpHashText:
			if len(col.Strs) < b.N {
				return fmt.Errorf("onnx: text column %q has %d values for %d rows", node.Input, len(col.Strs), b.N)
			}
			buckets := node.Buckets
			for r := 0; r < b.N; r++ {
				for _, tok := range ml.Tokenize(col.Strs[r]) {
					feats[r*w+off+ml.HashToken(tok, buckets)]++
				}
			}
		}
	}
	return nil
}

func (s *Session) score(feats []float64, n int, out []float64) {
	w := s.width
	m := &s.graph.Model
	switch m.Op {
	case OpLinear:
		coeff := m.Coeff
		for r := 0; r < n; r++ {
			row := feats[r*w : r*w+w]
			// Accumulate products first, then the intercept, matching the
			// float ordering of ml's Dot(w, x) + b exactly.
			var acc float64
			for j, c := range coeff {
				acc += c * row[j]
			}
			out[r] = acc + m.Intercept
		}
	case OpTreeEnsemble:
		for r := 0; r < n; r++ {
			out[r] = m.Base
		}
		rate := m.Rate
		for ti := range m.Trees {
			tr := &m.Trees[ti]
			for r := 0; r < n; r++ {
				row := feats[r*w : r*w+w]
				node := int32(0)
				for tr.Left[node] >= 0 {
					if row[tr.Feature[node]] < tr.Threshold[node] {
						node = tr.Left[node]
					} else {
						node = tr.Right[node]
					}
				}
				out[r] += rate * tr.Value[node]
			}
		}
	}
	if m.PostSigmoid {
		for r := 0; r < n; r++ {
			out[r] = ml.Sigmoid(out[r])
		}
	}
}

// BatchFromFrame adapts an ml.Frame into a Batch ordered by the graph's
// inputs; a convenience for tests and the standalone scoring path.
func BatchFromFrame(g *Graph, f *ml.Frame) (*Batch, error) {
	b := &Batch{N: f.NumRows()}
	for _, in := range g.Inputs {
		col := f.Col(in.Name)
		if col == nil {
			return nil, fmt.Errorf("onnx: frame is missing column %q", in.Name)
		}
		if col.Kind != in.Kind {
			return nil, fmt.Errorf("onnx: column %q is %v, graph wants %v", in.Name, col.Kind, in.Kind)
		}
		b.Cols = append(b.Cols, Column{Nums: col.Nums, Strs: col.Strs})
	}
	return b, nil
}
