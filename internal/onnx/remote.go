package onnx

import (
	"bytes"
	"context"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"repro/internal/ml"
)

// RemoteScorer models today's best practice the paper criticizes: the model
// runs in a separate scoring service, so every row must be exfiltrated from
// the database, serialized over a wire, deserialized, scored, and the
// results shipped back. We reproduce the costs (serialization, copies,
// chunked transfer, single-threaded service) with an in-memory wire; the
// network itself is the one piece we cannot ship in a library.
type RemoteScorer struct {
	sess      *Session
	chunkRows int
	json      bool
}

// NewRemoteScorer plans a session for g; chunkRows is the request batch
// size of the scoring service (defaults to 1000, a typical REST payload cap).
// The wire format is compact binary.
func NewRemoteScorer(g *Graph, chunkRows int) (*RemoteScorer, error) {
	sess, err := NewSession(g)
	if err != nil {
		return nil, err
	}
	if chunkRows <= 0 {
		chunkRows = 1000
	}
	return &RemoteScorer{sess: sess, chunkRows: chunkRows}, nil
}

// NewRemoteScorerJSON is NewRemoteScorer with a JSON wire — the fidelity
// mode for "applications invoking [containers] via HTTP/REST calls", where
// every request and response is a JSON document.
func NewRemoteScorerJSON(g *Graph, chunkRows int) (*RemoteScorer, error) {
	rs, err := NewRemoteScorer(g, chunkRows)
	if err != nil {
		return nil, err
	}
	rs.json = true
	return rs, nil
}

// Score ships the batch to the "service" chunk by chunk and collects the
// scores. Each chunk pays full serialize/copy/deserialize costs both ways.
func (rs *RemoteScorer) Score(b *Batch) ([]float64, error) {
	return rs.ScoreContext(context.Background(), b)
}

// ScoreContext is Score with a cancellation checkpoint between request
// chunks, mirroring the HTTP scorer's contract.
func (rs *RemoteScorer) ScoreContext(ctx context.Context, b *Batch) ([]float64, error) {
	out := make([]float64, 0, b.N)
	for lo := 0; lo < b.N; lo += rs.chunkRows {
		if ctx != nil {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			default:
			}
		}
		hi := lo + rs.chunkRows
		if hi > b.N {
			hi = b.N
		}
		chunk := sliceBatch(b, lo, hi)
		var wire []byte
		var err error
		if rs.json {
			wire, err = encodeBatchJSON(rs.sess.graph, chunk)
		} else {
			wire, err = encodeBatch(rs.sess.graph, chunk)
		}
		if err != nil {
			return nil, err
		}
		// The wire: the request bytes are copied once (kernel send buffer
		// analog) before the service reads them.
		recv := append([]byte(nil), wire...)
		var remote *Batch
		if rs.json {
			remote, err = decodeBatchJSON(rs.sess.graph, recv)
		} else {
			remote, err = decodeBatch(rs.sess.graph, recv)
		}
		if err != nil {
			return nil, err
		}
		scores, err := rs.sess.Run(remote)
		if err != nil {
			return nil, err
		}
		var resp []byte
		if rs.json {
			resp, err = json.Marshal(scoreResponse{Scores: scores})
			if err != nil {
				return nil, err
			}
		} else {
			resp = encodeScores(scores)
		}
		respRecv := append([]byte(nil), resp...)
		var got []float64
		if rs.json {
			var sr scoreResponse
			if err := json.Unmarshal(respRecv, &sr); err != nil {
				return nil, err
			}
			got = sr.Scores
		} else {
			got, err = decodeScores(respRecv)
			if err != nil {
				return nil, err
			}
		}
		out = append(out, got...)
	}
	return out, nil
}

func sliceBatch(b *Batch, lo, hi int) *Batch {
	s := &Batch{N: hi - lo}
	for _, c := range b.Cols {
		var nc Column
		if c.Nums != nil {
			nc.Nums = c.Nums[lo:hi]
		}
		if c.Strs != nil {
			nc.Strs = c.Strs[lo:hi]
		}
		s.Cols = append(s.Cols, nc)
	}
	return s
}

// encodeBatch writes a length-prefixed binary request: row count, then per
// input column either raw float64 bits or length-prefixed strings.
func encodeBatch(g *Graph, b *Batch) ([]byte, error) {
	var buf bytes.Buffer
	var scratch [8]byte
	binary.LittleEndian.PutUint64(scratch[:], uint64(b.N))
	buf.Write(scratch[:])
	for i, in := range g.Inputs {
		col := &b.Cols[i]
		if in.Kind == ml.KindNumeric {
			if len(col.Nums) < b.N {
				return nil, fmt.Errorf("onnx: remote encode: column %q too short", in.Name)
			}
			for r := 0; r < b.N; r++ {
				binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(col.Nums[r]))
				buf.Write(scratch[:])
			}
		} else {
			if len(col.Strs) < b.N {
				return nil, fmt.Errorf("onnx: remote encode: column %q too short", in.Name)
			}
			for r := 0; r < b.N; r++ {
				binary.LittleEndian.PutUint64(scratch[:], uint64(len(col.Strs[r])))
				buf.Write(scratch[:])
				buf.WriteString(col.Strs[r])
			}
		}
	}
	return buf.Bytes(), nil
}

func decodeBatch(g *Graph, data []byte) (*Batch, error) {
	rd := bytes.NewReader(data)
	var scratch [8]byte
	if _, err := io.ReadFull(rd, scratch[:]); err != nil {
		return nil, fmt.Errorf("onnx: remote decode: %w", err)
	}
	n := int(binary.LittleEndian.Uint64(scratch[:]))
	b := &Batch{N: n}
	for _, in := range g.Inputs {
		var col Column
		if in.Kind == ml.KindNumeric {
			col.Nums = make([]float64, n)
			for r := 0; r < n; r++ {
				if _, err := io.ReadFull(rd, scratch[:]); err != nil {
					return nil, fmt.Errorf("onnx: remote decode: %w", err)
				}
				col.Nums[r] = math.Float64frombits(binary.LittleEndian.Uint64(scratch[:]))
			}
		} else {
			col.Strs = make([]string, n)
			for r := 0; r < n; r++ {
				if _, err := io.ReadFull(rd, scratch[:]); err != nil {
					return nil, fmt.Errorf("onnx: remote decode: %w", err)
				}
				l := int(binary.LittleEndian.Uint64(scratch[:]))
				sb := make([]byte, l)
				if _, err := io.ReadFull(rd, sb); err != nil {
					return nil, fmt.Errorf("onnx: remote decode: %w", err)
				}
				col.Strs[r] = string(sb)
			}
		}
		b.Cols = append(b.Cols, col)
	}
	return b, nil
}

// JSON wire: one document per request with per-column arrays, the shape a
// typical REST scoring endpoint accepts.

type jsonRequest struct {
	N    int              `json:"n"`
	Cols map[string][]any `json:"cols"`
}

type scoreResponse struct {
	Scores []float64 `json:"scores"`
}

func encodeBatchJSON(g *Graph, b *Batch) ([]byte, error) {
	req := jsonRequest{N: b.N, Cols: map[string][]any{}}
	for i, in := range g.Inputs {
		col := &b.Cols[i]
		vals := make([]any, b.N)
		if in.Kind == ml.KindNumeric {
			if len(col.Nums) < b.N {
				return nil, fmt.Errorf("onnx: remote encode: column %q too short", in.Name)
			}
			for r := 0; r < b.N; r++ {
				vals[r] = col.Nums[r]
			}
		} else {
			if len(col.Strs) < b.N {
				return nil, fmt.Errorf("onnx: remote encode: column %q too short", in.Name)
			}
			for r := 0; r < b.N; r++ {
				vals[r] = col.Strs[r]
			}
		}
		req.Cols[in.Name] = vals
	}
	return json.Marshal(req)
}

func decodeBatchJSON(g *Graph, data []byte) (*Batch, error) {
	var req jsonRequest
	if err := json.Unmarshal(data, &req); err != nil {
		return nil, fmt.Errorf("onnx: remote decode: %w", err)
	}
	b := &Batch{N: req.N}
	for _, in := range g.Inputs {
		vals, ok := req.Cols[in.Name]
		if !ok || len(vals) != req.N {
			return nil, fmt.Errorf("onnx: remote decode: column %q missing or short", in.Name)
		}
		var col Column
		if in.Kind == ml.KindNumeric {
			col.Nums = make([]float64, req.N)
			for r, v := range vals {
				f, ok := v.(float64)
				if !ok {
					return nil, fmt.Errorf("onnx: remote decode: column %q row %d is not numeric", in.Name, r)
				}
				col.Nums[r] = f
			}
		} else {
			col.Strs = make([]string, req.N)
			for r, v := range vals {
				s, ok := v.(string)
				if !ok {
					return nil, fmt.Errorf("onnx: remote decode: column %q row %d is not a string", in.Name, r)
				}
				col.Strs[r] = s
			}
		}
		b.Cols = append(b.Cols, col)
	}
	return b, nil
}

func encodeScores(scores []float64) []byte {
	out := make([]byte, 8+8*len(scores))
	binary.LittleEndian.PutUint64(out, uint64(len(scores)))
	for i, s := range scores {
		binary.LittleEndian.PutUint64(out[8+8*i:], math.Float64bits(s))
	}
	return out
}

func decodeScores(data []byte) ([]float64, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("onnx: remote decode: short score response")
	}
	n := int(binary.LittleEndian.Uint64(data))
	if len(data) < 8+8*n {
		return nil, fmt.Errorf("onnx: remote decode: truncated score response")
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(data[8+8*i:]))
	}
	return out, nil
}
