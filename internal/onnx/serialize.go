package onnx

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Model serialization: graphs are stored as versioned binary blobs so the
// registry can treat models as plain high-value data (versioned, audited,
// backed up) — the paper's "models are best thought of as derived data".

const (
	formatMagic   = "FLCK"
	formatVersion = 1
)

type wireGraph struct {
	Version int
	Graph   *Graph
}

// Marshal serializes a graph into a self-describing binary blob.
func Marshal(g *Graph) ([]byte, error) {
	var buf bytes.Buffer
	buf.WriteString(formatMagic)
	enc := gob.NewEncoder(&buf)
	if err := enc.Encode(wireGraph{Version: formatVersion, Graph: g}); err != nil {
		return nil, fmt.Errorf("onnx: Marshal: %w", err)
	}
	return buf.Bytes(), nil
}

// Unmarshal deserializes a graph blob produced by Marshal and validates it.
func Unmarshal(data []byte) (*Graph, error) {
	if len(data) < len(formatMagic) || string(data[:len(formatMagic)]) != formatMagic {
		return nil, fmt.Errorf("onnx: Unmarshal: bad magic (not a model blob)")
	}
	dec := gob.NewDecoder(bytes.NewReader(data[len(formatMagic):]))
	var w wireGraph
	if err := dec.Decode(&w); err != nil {
		return nil, fmt.Errorf("onnx: Unmarshal: %w", err)
	}
	if w.Version != formatVersion {
		return nil, fmt.Errorf("onnx: Unmarshal: unsupported format version %d", w.Version)
	}
	if w.Graph == nil {
		return nil, fmt.Errorf("onnx: Unmarshal: empty graph")
	}
	if err := w.Graph.Validate(); err != nil {
		return nil, fmt.Errorf("onnx: Unmarshal: invalid graph: %w", err)
	}
	return w.Graph, nil
}
