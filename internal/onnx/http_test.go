package onnx

import (
	"testing"

	"repro/internal/ml"
)

func TestHTTPScoringMatchesLocal(t *testing.T) {
	p, f, _ := trainedPipeline(t, &ml.GradientBoosting{NTrees: 10, Loss: ml.LossLogistic}, 300)
	g, err := Export(p)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeGraph(g)
	if err != nil {
		t.Skipf("loopback listener unavailable: %v", err)
	}
	defer srv.Close()

	sess, _ := NewSession(g)
	b, _ := BatchFromFrame(g, f)
	want, _ := sess.Run(b)

	client := NewHTTPScorer(g, srv.URL, 100) // several requests per batch
	got, err := client.Score(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("scores = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("HTTP score differs at row %d: %v vs %v", i, got[i], want[i])
		}
	}
}

func TestHTTPScorerErrors(t *testing.T) {
	p, f, _ := trainedPipeline(t, &ml.LinearRegression{}, 50)
	g, _ := Export(p)
	b, _ := BatchFromFrame(g, f)
	// Dead endpoint.
	client := NewHTTPScorer(g, "http://127.0.0.1:1/score", 0)
	if _, err := client.Score(b); err == nil {
		t.Error("dead endpoint should error")
	}
}

func TestScoringServerRejectsBadRequests(t *testing.T) {
	p, _, _ := trainedPipeline(t, &ml.LinearRegression{}, 50)
	g, _ := Export(p)
	srv, err := ServeGraph(g)
	if err != nil {
		t.Skipf("loopback listener unavailable: %v", err)
	}
	defer srv.Close()
	// A request missing columns must come back as a client error, not a
	// hang or a panic.
	other, _, _ := trainedPipeline(t, &ml.LinearRegression{}, 10)
	og, _ := Export(other)
	og.Inputs = og.Inputs[:1]
	og.Feats = og.Feats[:1]
	og.Model.Coeff = og.Model.Coeff[:1]
	og.Relayout()
	client := NewHTTPScorer(og, srv.URL, 0)
	fr := ml.NewFrame().AddNumeric("age", []float64{1, 2})
	bb, err := BatchFromFrame(og, fr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Score(bb); err == nil {
		t.Error("mismatched request should error")
	}
}

func TestJSONWireRoundTrip(t *testing.T) {
	p, f, _ := trainedPipeline(t, &ml.GradientBoosting{NTrees: 5}, 120)
	g, _ := Export(p)
	b, _ := BatchFromFrame(g, f)
	wire, err := encodeBatchJSON(g, b)
	if err != nil {
		t.Fatal(err)
	}
	back, err := decodeBatchJSON(g, wire)
	if err != nil {
		t.Fatal(err)
	}
	if back.N != b.N {
		t.Fatalf("rows = %d, want %d", back.N, b.N)
	}
	sess, _ := NewSession(g)
	want, _ := sess.Run(b)
	got, _ := sess.Run(back)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("JSON round trip changed score at %d", i)
		}
	}
	if _, err := decodeBatchJSON(g, []byte("{")); err == nil {
		t.Error("bad JSON should error")
	}
}

func TestRemoteScorerJSONMatchesBinary(t *testing.T) {
	p, f, _ := trainedPipeline(t, &ml.LogisticRegression{Epochs: 20}, 400)
	g, _ := Export(p)
	b, _ := BatchFromFrame(g, f)
	bin, err := NewRemoteScorer(g, 128)
	if err != nil {
		t.Fatal(err)
	}
	js, err := NewRemoteScorerJSON(g, 128)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := bin.Score(b)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := js.Score(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("wire formats disagree at row %d: %v vs %v", i, s1[i], s2[i])
		}
	}
}
