package onnx

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
)

// Scorer is anything that can score a batch; implemented by Session-backed
// wrappers, the in-memory RemoteScorer, and the HTTP-backed HTTPScorer.
type Scorer interface {
	Score(b *Batch) ([]float64, error)
}

// ScoringServer is a real HTTP scoring service on the loopback interface —
// the containerized model deployment of §4.1, minus the container: requests
// pay genuine TCP, HTTP and JSON costs.
type ScoringServer struct {
	URL  string
	sess *Session
	ln   net.Listener
	srv  *http.Server
}

// ServeGraph starts a scoring service for g on 127.0.0.1:0 and returns
// once it accepts connections. Close it when done.
func ServeGraph(g *Graph) (*ScoringServer, error) {
	sess, err := NewSession(g)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("onnx: scoring server: %w", err)
	}
	s := &ScoringServer{sess: sess, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/score", s.handleScore)
	s.srv = &http.Server{Handler: mux}
	s.URL = "http://" + ln.Addr().String() + "/score"
	go func() {
		// Serve exits with ErrServerClosed on Close; nothing to do.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

func (s *ScoringServer) handleScore(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	batch, err := decodeBatchJSON(s.sess.graph, body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	scores, err := s.sess.Run(batch)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(scoreResponse{Scores: scores}); err != nil {
		// The client will observe the truncated body.
		return
	}
}

// Close shuts the service down.
func (s *ScoringServer) Close() error { return s.srv.Close() }

// HTTPScorer scores batches against a ScoringServer endpoint, chunking
// rows per request like a REST client would.
type HTTPScorer struct {
	url       string
	graph     *Graph
	chunkRows int
	client    *http.Client
}

// NewHTTPScorer builds a client for the given endpoint. chunkRows defaults
// to 1000.
func NewHTTPScorer(g *Graph, url string, chunkRows int) *HTTPScorer {
	if chunkRows <= 0 {
		chunkRows = 1000
	}
	return &HTTPScorer{url: url, graph: g, chunkRows: chunkRows, client: &http.Client{}}
}

// Score POSTs the batch chunk by chunk and collects the scores.
func (hs *HTTPScorer) Score(b *Batch) ([]float64, error) {
	out := make([]float64, 0, b.N)
	for lo := 0; lo < b.N; lo += hs.chunkRows {
		hi := lo + hs.chunkRows
		if hi > b.N {
			hi = b.N
		}
		wire, err := encodeBatchJSON(hs.graph, sliceBatch(b, lo, hi))
		if err != nil {
			return nil, err
		}
		resp, err := hs.client.Post(hs.url, "application/json", bytes.NewReader(wire))
		if err != nil {
			return nil, fmt.Errorf("onnx: http scorer: %w", err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("onnx: http scorer: %s: %s", resp.Status, body)
		}
		var sr scoreResponse
		if err := json.Unmarshal(body, &sr); err != nil {
			return nil, err
		}
		out = append(out, sr.Scores...)
	}
	return out, nil
}
