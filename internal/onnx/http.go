package onnx

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"time"

	"repro/internal/fault"
)

// Scorer is anything that can score a batch; implemented by Session-backed
// wrappers, the in-memory RemoteScorer, and the HTTP-backed HTTPScorer.
type Scorer interface {
	Score(b *Batch) ([]float64, error)
}

// ContextScorer is a Scorer whose requests can be canceled. Scorers backed
// by a network service implement it so a hung endpoint cannot wedge the
// calling query.
type ContextScorer interface {
	Scorer
	ScoreContext(ctx context.Context, b *Batch) ([]float64, error)
}

// ScoreWithContext scores through ScoreContext when the scorer supports
// cancellation, falling back to plain Score. A nil context means no
// cancellation.
func ScoreWithContext(ctx context.Context, s Scorer, b *Batch) ([]float64, error) {
	if cs, ok := s.(ContextScorer); ok && ctx != nil {
		return cs.ScoreContext(ctx, b)
	}
	return s.Score(b)
}

// ServerOptions tunes a ScoringServer's request handling.
type ServerOptions struct {
	// ReadTimeout bounds reading one request (header + body); defaults to
	// 10s. A stalled client cannot pin a connection forever.
	ReadTimeout time.Duration
	// WriteTimeout bounds writing one response; defaults to 30s.
	WriteTimeout time.Duration
	// DrainTimeout bounds how long Close waits for in-flight requests to
	// finish before force-closing connections; defaults to 5s.
	DrainTimeout time.Duration
}

func (o *ServerOptions) withDefaults() ServerOptions {
	out := ServerOptions{ReadTimeout: 10 * time.Second, WriteTimeout: 30 * time.Second, DrainTimeout: 5 * time.Second}
	if o == nil {
		return out
	}
	if o.ReadTimeout > 0 {
		out.ReadTimeout = o.ReadTimeout
	}
	if o.WriteTimeout > 0 {
		out.WriteTimeout = o.WriteTimeout
	}
	if o.DrainTimeout > 0 {
		out.DrainTimeout = o.DrainTimeout
	}
	return out
}

// ScoringServer is a real HTTP scoring service on the loopback interface —
// the containerized model deployment of §4.1, minus the container: requests
// pay genuine TCP, HTTP and JSON costs.
type ScoringServer struct {
	URL   string
	sess  *Session
	ln    net.Listener
	srv   *http.Server
	drain time.Duration
}

// ServeGraph starts a scoring service for g on 127.0.0.1:0 with default
// request timeouts and returns once it accepts connections. Close it when
// done.
func ServeGraph(g *Graph) (*ScoringServer, error) {
	return ServeGraphOpts(g, nil)
}

// ServeGraphOpts is ServeGraph with explicit request-timeout and drain
// options (nil means defaults).
func ServeGraphOpts(g *Graph, opts *ServerOptions) (*ScoringServer, error) {
	o := opts.withDefaults()
	sess, err := NewSession(g)
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("onnx: scoring server: %w", err)
	}
	s := &ScoringServer{sess: sess, ln: ln, drain: o.DrainTimeout}
	mux := http.NewServeMux()
	mux.HandleFunc("/score", s.handleScore)
	s.srv = &http.Server{
		Handler:      mux,
		ReadTimeout:  o.ReadTimeout,
		WriteTimeout: o.WriteTimeout,
	}
	s.URL = "http://" + ln.Addr().String() + "/score"
	go func() {
		// Serve exits with ErrServerClosed on Close; nothing to do.
		_ = s.srv.Serve(ln)
	}()
	return s, nil
}

func (s *ScoringServer) handleScore(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	batch, err := decodeBatchJSON(s.sess.graph, body)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	scores, err := s.sess.Run(batch)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(scoreResponse{Scores: scores}); err != nil {
		// The client will observe the truncated body.
		return
	}
}

// Close shuts the service down gracefully: it stops accepting connections,
// waits up to the drain timeout for in-flight requests to complete, then
// force-closes whatever remains.
func (s *ScoringServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), s.drain)
	defer cancel()
	if err := s.srv.Shutdown(ctx); err != nil {
		return s.srv.Close()
	}
	return nil
}

// HTTPScorer scores batches against a ScoringServer endpoint, chunking
// rows per request like a REST client would.
type HTTPScorer struct {
	url        string
	graph      *Graph
	chunkRows  int
	client     *http.Client
	reqTimeout time.Duration
}

// NewHTTPScorer builds a client for the given endpoint. chunkRows defaults
// to 1000. Each chunk request carries a 60s safety timeout layered UNDER
// the caller's context (the per-query deadline always propagates; the
// safety timeout only catches hung backends when the query has no deadline
// of its own) — tune or clear it with SetTimeout.
func NewHTTPScorer(g *Graph, url string, chunkRows int) *HTTPScorer {
	if chunkRows <= 0 {
		chunkRows = 1000
	}
	return &HTTPScorer{url: url, graph: g, chunkRows: chunkRows,
		client: &http.Client{}, reqTimeout: 60 * time.Second}
}

// SetTimeout replaces the per-chunk safety timeout (0 disables it;
// cancellation then comes only from ScoreContext's context).
func (hs *HTTPScorer) SetTimeout(d time.Duration) { hs.reqTimeout = d }

// URL reports the scoring endpoint (the SharedBreaker key).
func (hs *HTTPScorer) URL() string { return hs.url }

// Score POSTs the batch chunk by chunk and collects the scores.
func (hs *HTTPScorer) Score(b *Batch) ([]float64, error) {
	return hs.ScoreContext(context.Background(), b)
}

// ScoreContext is Score under a cancellation context: an in-flight request
// aborts as soon as ctx is done, so a hung scoring service cannot wedge the
// calling query. Each chunk request runs under the caller's context plus
// the per-chunk safety timeout, and failures come back as typed
// *ScoreError values (connect vs timeout vs HTTP status) so breakers and
// metrics can tell a dead backend from a slow one.
func (hs *HTTPScorer) ScoreContext(ctx context.Context, b *Batch) ([]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]float64, 0, b.N)
	for lo := 0; lo < b.N; lo += hs.chunkRows {
		hi := lo + hs.chunkRows
		if hi > b.N {
			hi = b.N
		}
		if err := fault.Inject("scorer.http"); err != nil {
			return nil, &ScoreError{Kind: KindConnect, Endpoint: hs.url, Err: err}
		}
		wire, err := encodeBatchJSON(hs.graph, sliceBatch(b, lo, hi))
		if err != nil {
			return nil, err
		}
		cctx, cancel := ctx, context.CancelFunc(func() {})
		if hs.reqTimeout > 0 {
			cctx, cancel = context.WithTimeout(ctx, hs.reqTimeout)
		}
		scores, err := hs.scoreChunk(cctx, wire)
		cancel()
		if err != nil {
			// The caller's own cancellation/deadline surfaces as-is (it is
			// not a backend fault); everything else is classified.
			if cerr := ctx.Err(); cerr != nil {
				return nil, cerr
			}
			return nil, err
		}
		out = append(out, scores...)
	}
	return out, nil
}

// scoreChunk POSTs one encoded chunk and decodes the scores; transport and
// status failures come back as *ScoreError.
func (hs *HTTPScorer) scoreChunk(ctx context.Context, wire []byte) ([]float64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, hs.url, bytes.NewReader(wire))
	if err != nil {
		return nil, fmt.Errorf("onnx: http scorer: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := hs.client.Do(req)
	if err != nil {
		return nil, classifyTransport(hs.url, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, classifyTransport(hs.url, err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, &ScoreError{Kind: KindHTTP, Status: resp.StatusCode, Endpoint: hs.url,
			Err: fmt.Errorf("%s: %s", resp.Status, strings.TrimSpace(string(body)))}
	}
	var sr scoreResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		return nil, fmt.Errorf("onnx: http scorer: decoding response: %w", err)
	}
	return sr.Scores, nil
}
