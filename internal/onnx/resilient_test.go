package onnx

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/ml"
)

// flakyScorer fails its first `failures` calls with the given error, then
// succeeds, counting attempts.
type flakyScorer struct {
	failures int
	err      error
	calls    atomic.Int64
}

func (f *flakyScorer) Score(b *Batch) ([]float64, error) {
	n := f.calls.Add(1)
	if int(n) <= f.failures {
		return nil, f.err
	}
	return []float64{0.5}, nil
}

func transientErr(ep string) *ScoreError {
	return &ScoreError{Kind: KindConnect, Endpoint: ep, Err: errors.New("connection refused")}
}

func TestBreakerOpensAfterThreshold(t *testing.T) {
	br := NewBreaker("ep1", 2, time.Hour)
	if err := br.Allow(); err != nil {
		t.Fatalf("closed breaker refused: %v", err)
	}
	br.Failure()
	if err := br.Allow(); err != nil {
		t.Fatalf("one failure under threshold=2 opened the breaker: %v", err)
	}
	br.Failure()
	err := br.Allow()
	if err == nil {
		t.Fatal("breaker did not open after threshold failures")
	}
	var se *ScoreError
	if !errors.As(err, &se) || se.Kind != KindBreaker {
		t.Fatalf("open-breaker error = %v, want *ScoreError{Kind: KindBreaker}", err)
	}
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open-breaker error does not wrap ErrBreakerOpen: %v", err)
	}
	// A success after reclose wipes the streak.
	br.Success()
	if err := br.Allow(); err != nil {
		t.Fatalf("Success did not reclose: %v", err)
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	br := NewBreaker("ep2", 1, 30*time.Millisecond)
	br.Failure() // threshold 1: open immediately
	if err := br.Allow(); err == nil {
		t.Fatal("open breaker admitted a call before cooldown")
	}
	time.Sleep(40 * time.Millisecond)
	// Cooldown elapsed: exactly one probe goes through.
	if err := br.Allow(); err != nil {
		t.Fatalf("half-open breaker refused the probe: %v", err)
	}
	if err := br.Allow(); err == nil {
		t.Fatal("half-open breaker admitted a second concurrent probe")
	}
	// Failed probe reopens and restarts the cooldown.
	br.Failure()
	if err := br.Allow(); err == nil {
		t.Fatal("breaker closed after a failed probe")
	}
	time.Sleep(40 * time.Millisecond)
	if err := br.Allow(); err != nil {
		t.Fatalf("second probe refused: %v", err)
	}
	br.Success()
	if err := br.Allow(); err != nil {
		t.Fatalf("successful probe did not reclose the breaker: %v", err)
	}
	if st := br.State(); st != breakerClosed {
		t.Fatalf("state = %d, want closed", st)
	}
}

func TestResilientScorerRetriesTransient(t *testing.T) {
	fs := &flakyScorer{failures: 2, err: transientErr("ep")}
	rs := &ResilientScorer{S: fs, MaxRetries: 2, BaseBackoff: time.Millisecond}
	scores, err := rs.Score(nil)
	if err != nil {
		t.Fatalf("retries should have absorbed 2 transient failures: %v", err)
	}
	if len(scores) != 1 || scores[0] != 0.5 {
		t.Fatalf("scores = %v", scores)
	}
	if got := fs.calls.Load(); got != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", got)
	}
}

func TestResilientScorerNoRetryOnClientError(t *testing.T) {
	bad := &ScoreError{Kind: KindHTTP, Status: http.StatusBadRequest, Endpoint: "ep",
		Err: errors.New("400 Bad Request")}
	fs := &flakyScorer{failures: 10, err: bad}
	rs := &ResilientScorer{S: fs, MaxRetries: 3, BaseBackoff: time.Millisecond}
	_, err := rs.Score(nil)
	if err == nil {
		t.Fatal("4xx should surface, not succeed")
	}
	if got := fs.calls.Load(); got != 1 {
		t.Fatalf("attempts = %d for a non-transient failure, want 1", got)
	}
	var se *ScoreError
	if !errors.As(err, &se) || se.Status != http.StatusBadRequest {
		t.Fatalf("error = %v, want the 400 ScoreError", err)
	}
}

func TestResilientScorerFallbackAndFastFail(t *testing.T) {
	dead := &flakyScorer{failures: 1 << 30, err: transientErr("ep")}
	br := NewBreaker("ep3", 2, time.Hour)
	rs := &ResilientScorer{S: dead, Breaker: br, MaxRetries: 1,
		BaseBackoff: time.Millisecond, Fallback: &flakyScorer{}}
	scores, err := rs.Score(nil)
	if err != nil {
		t.Fatalf("fallback should serve when the primary is down: %v", err)
	}
	if len(scores) != 1 {
		t.Fatalf("scores = %v", scores)
	}
	// The two failed attempts tripped the breaker; the next call must not
	// touch the primary at all — straight to fallback.
	before := dead.calls.Load()
	if _, err := rs.Score(nil); err != nil {
		t.Fatalf("fast-fail fallback: %v", err)
	}
	if got := dead.calls.Load(); got != before {
		t.Fatalf("open breaker still sent %d calls to the dead primary", got-before)
	}
}

func TestResilientScorerCallerCancelWins(t *testing.T) {
	dead := &flakyScorer{failures: 1 << 30, err: transientErr("ep")}
	rs := &ResilientScorer{S: dead, MaxRetries: 5, BaseBackoff: 50 * time.Millisecond,
		Fallback: &flakyScorer{}}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err := rs.ScoreContext(ctx, nil)
	if err == nil {
		t.Fatal("canceled context should not be masked by the fallback")
	}
	if time.Since(start) > time.Second {
		t.Fatal("canceled call kept retrying")
	}
}

func TestSharedBreakerSurvivesRebuilds(t *testing.T) {
	t.Cleanup(ResetBreakers)
	a := SharedBreaker("http://ep4/score", 1, time.Hour)
	a.Failure()
	// A "rebuilt scorer" asking for the same endpoint gets the same (open)
	// breaker, regardless of config values.
	b := SharedBreaker("http://ep4/score", 99, time.Second)
	if a != b {
		t.Fatal("SharedBreaker returned a fresh breaker for a known endpoint")
	}
	if err := b.Allow(); err == nil {
		t.Fatal("breaker state was lost across the rebuild")
	}
	gauges := BreakerGauges()
	found := false
	for k := range gauges {
		if strings.Contains(k, "flock_scorer_breaker_state") && strings.Contains(k, "ep4") {
			found = true
		}
	}
	if !found {
		t.Fatalf("breaker state missing from gauges: %v", gauges)
	}
}

// TestHTTPScorerErrorKinds pins the transport-error taxonomy: a dead
// endpoint classifies as connect, a 5xx as http (transient), a slow backend
// under the chunk safety timeout as timeout.
func TestHTTPScorerErrorKinds(t *testing.T) {
	p, f, _ := trainedPipeline(t, &ml.LinearRegression{}, 50)
	g, _ := Export(p)
	b, _ := BatchFromFrame(g, f)

	var se *ScoreError

	// Connection refused.
	dead := NewHTTPScorer(g, "http://127.0.0.1:1/score", 0)
	_, err := dead.Score(b)
	if !errors.As(err, &se) || se.Kind != KindConnect {
		t.Fatalf("dead endpoint error = %v, want KindConnect", err)
	}
	if !se.Transient() {
		t.Fatal("connect failure should be transient")
	}

	// HTTP 500.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "model exploded", http.StatusInternalServerError)
	}))
	defer srv.Close()
	broken := NewHTTPScorer(g, srv.URL, 0)
	_, err = broken.Score(b)
	if !errors.As(err, &se) || se.Kind != KindHTTP || se.Status != http.StatusInternalServerError {
		t.Fatalf("500 endpoint error = %v, want KindHTTP/500", err)
	}
	if !se.Transient() {
		t.Fatal("5xx should be transient")
	}

	// HTTP 400 is not transient.
	srv400 := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "bad batch", http.StatusBadRequest)
	}))
	defer srv400.Close()
	rejecting := NewHTTPScorer(g, srv400.URL, 0)
	_, err = rejecting.Score(b)
	if !errors.As(err, &se) || se.Kind != KindHTTP || se.Transient() {
		t.Fatalf("400 endpoint error = %v, want non-transient KindHTTP", err)
	}

	// Chunk safety timeout on a hung backend.
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(2 * time.Second)
	}))
	defer hang.Close()
	slow := NewHTTPScorer(g, hang.URL, 0)
	slow.SetTimeout(30 * time.Millisecond)
	_, err = slow.Score(b)
	if !errors.As(err, &se) || se.Kind != KindTimeout {
		t.Fatalf("hung endpoint error = %v, want KindTimeout", err)
	}

	// The caller's own cancellation surfaces as-is, not as a ScoreError.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	hung := NewHTTPScorer(g, hang.URL, 0)
	_, err = hung.ScoreContext(ctx, b)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled caller got %v, want context.Canceled", err)
	}
}

// TestChaosScorerHTTP drives concurrent scoring through a real loopback
// scoring service while the scorer.http failpoint injects random connect
// failures: the retry + fallback ladder must absorb every fault and return
// exactly the scores the native session produces.
func TestChaosScorerHTTP(t *testing.T) {
	p, f, _ := trainedPipeline(t, &ml.GradientBoosting{NTrees: 5, Loss: ml.LossLogistic}, 200)
	g, err := Export(p)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeGraph(g)
	if err != nil {
		t.Skipf("loopback listener unavailable: %v", err)
	}
	defer srv.Close()

	sess, _ := NewSession(g)
	b, _ := BatchFromFrame(g, f)
	want, _ := sess.Run(b)

	local, err := NewLocalScorer(g)
	if err != nil {
		t.Fatal(err)
	}
	fault.Reset()
	fault.Seed(7)
	fault.Enable("scorer.http", fault.Spec{Prob: 0.3})
	defer fault.Reset()

	const callers = 8
	var wg sync.WaitGroup
	errs := make(chan error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rs := &ResilientScorer{
				S:           NewHTTPScorer(g, srv.URL, 50), // several chunks per call
				Breaker:     NewBreaker(srv.URL, 1000, time.Second),
				MaxRetries:  4,
				BaseBackoff: time.Millisecond,
				Fallback:    local,
			}
			got, err := rs.Score(b)
			if err != nil {
				errs <- err
				return
			}
			if len(got) != len(want) {
				errs <- errors.New("short score vector")
				return
			}
			for j := range want {
				if got[j] != want[j] {
					errs <- errors.New("scores diverged under fault injection")
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if fault.Triggered("scorer.http") == 0 {
		t.Fatal("chaos schedule never fired — the run proved nothing")
	}
}
