package onnx

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ml"
)

// trainedPipeline builds and fits a mixed-type pipeline on synthetic data.
func trainedPipeline(t testing.TB, pred ml.Predictor, n int) (*ml.Pipeline, *ml.Frame, []float64) {
	t.Helper()
	r := ml.NewRand(99)
	ages := make([]float64, n)
	income := make([]float64, n)
	regions := make([]string, n)
	notes := make([]string, n)
	y := make([]float64, n)
	regionNames := []string{"us", "eu", "apac", "latam"}
	phrases := []string{"on time", "late payment", "disputed charge", "loyal customer", ""}
	for i := 0; i < n; i++ {
		ages[i] = 20 + r.Float64()*50
		income[i] = 20000 + r.Float64()*100000
		regions[i] = regionNames[r.Intn(4)]
		notes[i] = phrases[r.Intn(5)]
		score := (ages[i]-45)/12 + (income[i]-70000)/40000
		if regions[i] == "us" {
			score++
		}
		if score > 0 {
			y[i] = 1
		}
	}
	f := ml.NewFrame().
		AddNumeric("age", ages).
		AddNumeric("income", income).
		AddCategorical("region", regions).
		AddText("notes", notes)
	p := ml.NewPipeline("risk",
		ml.NewFeaturizer().
			With("age", &ml.StandardScaler{}).
			With("income", &ml.StandardScaler{}).
			With("region", &ml.OneHotEncoder{}).
			With("notes", &ml.HashingVectorizer{Buckets: 8}),
		pred)
	if err := p.Fit(f, y); err != nil {
		t.Fatal(err)
	}
	return p, f, y
}

func TestExportRoundTripEquivalence(t *testing.T) {
	preds := map[string]ml.Predictor{
		"linear":   &ml.LinearRegression{},
		"logistic": &ml.LogisticRegression{Epochs: 50},
		"tree":     &ml.DecisionTree{MaxDepth: 4},
		"gbm":      &ml.GradientBoosting{NTrees: 25, MaxDepth: 3, Loss: ml.LossLogistic},
	}
	for name, pred := range preds {
		t.Run(name, func(t *testing.T) {
			p, f, _ := trainedPipeline(t, pred, 300)
			g, err := Export(p)
			if err != nil {
				t.Fatal(err)
			}
			sess, err := NewSession(g)
			if err != nil {
				t.Fatal(err)
			}
			b, err := BatchFromFrame(g, f)
			if err != nil {
				t.Fatal(err)
			}
			got, err := sess.Run(b)
			if err != nil {
				t.Fatal(err)
			}
			want, err := p.PredictBatch(f)
			if err != nil {
				t.Fatal(err)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("row %d: session %v != pipeline %v (must be bit-identical)", i, got[i], want[i])
				}
			}
		})
	}
}

func TestExportErrors(t *testing.T) {
	if _, err := Export(nil); err == nil {
		t.Error("nil pipeline should error")
	}
	if _, err := Export(&ml.Pipeline{Name: "x"}); err == nil {
		t.Error("incomplete pipeline should error")
	}
}

func TestGraphValidate(t *testing.T) {
	p, _, _ := trainedPipeline(t, &ml.LinearRegression{}, 100)
	g, err := Export(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := g.Clone()
	bad.Feats[0].Input = "ghost"
	if err := bad.Validate(); err == nil {
		t.Error("undeclared input should fail validation")
	}
	bad = g.Clone()
	bad.Model.Coeff = bad.Model.Coeff[:2]
	if err := bad.Validate(); err == nil {
		t.Error("short coefficient vector should fail validation")
	}
	bad = g.Clone()
	bad.Output = ""
	if err := bad.Validate(); err == nil {
		t.Error("missing output name should fail validation")
	}
	bad = g.Clone()
	bad.Feats[1].Offset = 99
	if err := bad.Validate(); err == nil {
		t.Error("inconsistent offsets should fail validation")
	}
}

func TestGraphCloneIsDeep(t *testing.T) {
	p, _, _ := trainedPipeline(t, &ml.GradientBoosting{NTrees: 5}, 100)
	g, _ := Export(p)
	c := g.Clone()
	c.Model.Trees[0].Threshold[0] = 1e9
	c.Feats[2].Categories[0] = "MUTATED"
	if g.Model.Trees[0].Threshold[0] == 1e9 {
		t.Error("tree arrays are shared after Clone")
	}
	if g.Feats[2].Categories[0] == "MUTATED" {
		t.Error("categories are shared after Clone")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	p, f, _ := trainedPipeline(t, &ml.GradientBoosting{NTrees: 10, Loss: ml.LossLogistic}, 150)
	g, _ := Export(p)
	blob, err := Marshal(g)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	s1, _ := NewSession(g)
	s2, _ := NewSession(g2)
	b, _ := BatchFromFrame(g, f)
	r1, err := s1.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := s2.Run(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("serialized model differs at row %d", i)
		}
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte("garbage")); err == nil {
		t.Error("bad magic should error")
	}
	if _, err := Unmarshal([]byte{}); err == nil {
		t.Error("empty blob should error")
	}
	if _, err := Unmarshal([]byte("FLCKnotgob")); err == nil {
		t.Error("corrupt body should error")
	}
}

func TestPruneUnusedFeatures(t *testing.T) {
	// Train a GBM where the text column carries no signal; the exported
	// model should not use every hash bucket, and a model trained only on
	// informative columns lets us verify full-column drops.
	p, f, _ := trainedPipeline(t, &ml.GradientBoosting{NTrees: 10, MaxDepth: 2}, 400)
	g, _ := Export(p)
	orig := g.Clone()
	res := PruneUnusedFeatures(g)
	if res.KeptFeatures > res.TotalFeatures {
		t.Fatalf("kept %d > total %d", res.KeptFeatures, res.TotalFeatures)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("pruned graph invalid: %v", err)
	}
	// Semantics preserved on the training data.
	sOrig, _ := NewSession(orig)
	sPruned, _ := NewSession(g)
	bOrig, _ := BatchFromFrame(orig, f)
	bPruned, err := BatchFromFrame(g, f)
	if err != nil {
		t.Fatal(err)
	}
	r1, _ := sOrig.Run(bOrig)
	r2, _ := sPruned.Run(bPruned)
	for i := range r1 {
		if r1[i] != r2[i] {
			t.Fatalf("pruning changed prediction at row %d: %v vs %v", i, r1[i], r2[i])
		}
	}
}

func TestPruneDropsDeadColumns(t *testing.T) {
	// Linear model with zero coefficients on one whole block.
	p, _, _ := trainedPipeline(t, &ml.LinearRegression{}, 100)
	g, _ := Export(p)
	// Zero out the hash block (offset of notes node) manually.
	var notesNode *FeatNode
	for i := range g.Feats {
		if g.Feats[i].Input == "notes" {
			notesNode = &g.Feats[i]
		}
	}
	for j := 0; j < notesNode.Buckets; j++ {
		g.Model.Coeff[notesNode.Offset+j] = 0
	}
	res := PruneUnusedFeatures(g)
	found := false
	for _, d := range res.DroppedInputs {
		if d == "notes" {
			found = true
		}
	}
	if !found {
		t.Errorf("notes column should be dropped, got %v", res.DroppedInputs)
	}
	for _, in := range g.Inputs {
		if in.Name == "notes" {
			t.Error("notes input spec should be removed")
		}
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCompressWithStats(t *testing.T) {
	p, f, _ := trainedPipeline(t, &ml.GradientBoosting{NTrees: 30, MaxDepth: 4}, 500)
	g, _ := Export(p)
	orig := g.Clone()

	// Stats restricted to what the data actually contains.
	stats := Stats{
		"age":    {HasRange: true, Min: 20, Max: 70},
		"income": {HasRange: true, Min: 20000, Max: 120000},
		"region": {Categories: map[string]bool{"us": true, "eu": true, "apac": true, "latam": true}},
	}
	res := CompressWithStats(g, stats)
	if res.NodesAfter > res.NodesBefore {
		t.Errorf("compression grew the model: %d -> %d", res.NodesBefore, res.NodesAfter)
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("compressed graph invalid: %v", err)
	}
	sOrig, _ := NewSession(orig)
	sComp, _ := NewSession(g)
	bOrig, _ := BatchFromFrame(orig, f)
	bComp, _ := BatchFromFrame(g, f)
	r1, _ := sOrig.Run(bOrig)
	r2, _ := sComp.Run(bComp)
	for i := range r1 {
		if math.Abs(r1[i]-r2[i]) > 1e-12 {
			t.Fatalf("compression changed prediction at row %d: %v vs %v", i, r1[i], r2[i])
		}
	}
}

func TestCompressDropsAbsentCategories(t *testing.T) {
	p, f, _ := trainedPipeline(t, &ml.GradientBoosting{NTrees: 20, MaxDepth: 3}, 500)
	g, _ := Export(p)
	orig := g.Clone()
	// Pretend the target table only contains two regions.
	stats := Stats{
		"region": {Categories: map[string]bool{"us": true, "eu": true}},
	}
	res := CompressWithStats(g, stats)
	if res.CategoriesDropped == 0 {
		t.Skip("model did not use the absent categories; nothing to verify")
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Predictions must agree on rows whose region is within the stats.
	sOrig, _ := NewSession(orig)
	sComp, _ := NewSession(g)
	for i := 0; i < f.NumRows(); i++ {
		region := f.Col("region").Strs[i]
		if region != "us" && region != "eu" {
			continue
		}
		row := f.Slice(i, i+1)
		bO, _ := BatchFromFrame(orig, row)
		bC, err := BatchFromFrame(g, row)
		if err != nil {
			t.Fatal(err)
		}
		r1, _ := sOrig.Run(bO)
		r2, _ := sComp.Run(bC)
		if math.Abs(r1[0]-r2[0]) > 1e-12 {
			t.Fatalf("row %d (%s): %v vs %v", i, region, r1[0], r2[0])
		}
	}
}

func TestPushUpThreshold(t *testing.T) {
	p, f, _ := trainedPipeline(t, &ml.LogisticRegression{Epochs: 50}, 300)
	g, _ := Export(p)
	orig := g.Clone()
	const prob = 0.8
	raw, ok := PushUpThreshold(g, prob)
	if !ok {
		t.Fatal("push-up should apply to a sigmoid classifier")
	}
	if g.Model.PostSigmoid {
		t.Error("sigmoid should be removed")
	}
	sOrig, _ := NewSession(orig)
	sRaw, _ := NewSession(g)
	b, _ := BatchFromFrame(orig, f)
	probs, _ := sOrig.Run(b)
	raws, _ := sRaw.Run(b)
	for i := range probs {
		if (probs[i] >= prob) != (raws[i] >= raw) {
			t.Fatalf("row %d: prob %v vs raw %v disagree on threshold", i, probs[i], raws[i])
		}
	}
	// Does not apply twice or to non-sigmoid models.
	if _, ok := PushUpThreshold(g, prob); ok {
		t.Error("push-up applied to a model without sigmoid")
	}
	if _, ok := PushUpThreshold(orig.Clone(), 1.5); ok {
		t.Error("push-up applied with out-of-range probability")
	}
}

func TestRemoteScorerMatchesLocal(t *testing.T) {
	p, f, _ := trainedPipeline(t, &ml.GradientBoosting{NTrees: 15, Loss: ml.LossLogistic}, 2500)
	g, _ := Export(p)
	rs, err := NewRemoteScorer(g, 1000)
	if err != nil {
		t.Fatal(err)
	}
	sess, _ := NewSession(g)
	b, _ := BatchFromFrame(g, f)
	local, _ := sess.Run(b)
	remote, err := rs.Score(b)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote) != len(local) {
		t.Fatalf("remote returned %d scores, want %d", len(remote), len(local))
	}
	for i := range local {
		if local[i] != remote[i] {
			t.Fatalf("remote differs at row %d", i)
		}
	}
}

func TestSessionErrors(t *testing.T) {
	p, f, _ := trainedPipeline(t, &ml.LinearRegression{}, 50)
	g, _ := Export(p)
	sess, _ := NewSession(g)
	b, _ := BatchFromFrame(g, f)
	if err := sess.RunInto(b, make([]float64, 3)); err == nil {
		t.Error("short output slice should error")
	}
	bad := &Batch{N: 50, Cols: b.Cols[:1]}
	if _, err := sess.Run(bad); err == nil {
		t.Error("column-count mismatch should error")
	}
	short := &Batch{N: 50}
	for _, c := range b.Cols {
		nc := c
		if nc.Nums != nil {
			nc.Nums = nc.Nums[:10]
		}
		short.Cols = append(short.Cols, nc)
	}
	if _, err := sess.Run(short); err == nil {
		t.Error("short column should error")
	}
}

func TestSessionConcurrentUse(t *testing.T) {
	p, f, _ := trainedPipeline(t, &ml.GradientBoosting{NTrees: 10}, 500)
	g, _ := Export(p)
	sess, _ := NewSession(g)
	b, _ := BatchFromFrame(g, f)
	want, _ := sess.Run(b)
	done := make(chan error, 8)
	for w := 0; w < 8; w++ {
		go func() {
			for k := 0; k < 20; k++ {
				got, err := sess.Run(b)
				if err != nil {
					done <- err
					return
				}
				for i := range want {
					if got[i] != want[i] {
						done <- errMismatch
						return
					}
				}
			}
			done <- nil
		}()
	}
	for w := 0; w < 8; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

var errMismatch = errType{}

type errType struct{}

func (errType) Error() string { return "concurrent run mismatch" }

// Property: pruning and compression never change predictions on data that
// satisfies the stats, for random thresholds and random inputs.
func TestTransformSemanticsProperty(t *testing.T) {
	p, _, _ := trainedPipeline(t, &ml.GradientBoosting{NTrees: 12, MaxDepth: 3, Loss: ml.LossLogistic}, 400)
	g0, _ := Export(p)
	sess0, _ := NewSession(g0)

	g1 := g0.Clone()
	PruneUnusedFeatures(g1)
	sess1, _ := NewSession(g1)

	f := func(age, income float64, regionPick uint8) bool {
		if math.IsNaN(age) || math.IsInf(age, 0) || math.IsNaN(income) || math.IsInf(income, 0) {
			return true
		}
		regions := []string{"us", "eu", "apac", "latam"}
		fr := ml.NewFrame().
			AddNumeric("age", []float64{age}).
			AddNumeric("income", []float64{income}).
			AddCategorical("region", []string{regions[int(regionPick)%4]}).
			AddText("notes", []string{"late payment"})
		b0, err := BatchFromFrame(g0, fr)
		if err != nil {
			return false
		}
		b1, err := BatchFromFrame(g1, fr)
		if err != nil {
			return false
		}
		r0, err0 := sess0.Run(b0)
		r1, err1 := sess1.Run(b1)
		if err0 != nil || err1 != nil {
			return false
		}
		return r0[0] == r1[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
