package onnx

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Circuit breaker for remote scoring endpoints. Without one, a dead
// backend turns every PREDICT into a full client-timeout wait — each
// burning a server worker slot for the duration — before failing. The
// breaker converts that into a fast, typed failure: after threshold
// consecutive failures the circuit opens and calls fail immediately; once
// the cooldown elapses a single half-open probe is let through, and its
// outcome either closes the circuit or re-opens it for another cooldown.

// ErrBreakerOpen is wrapped by the error breaker-rejected calls receive
// (match with errors.Is).
var ErrBreakerOpen = errors.New("onnx: circuit breaker open")

// Breaker states.
const (
	breakerClosed = iota
	breakerOpen
	breakerHalfOpen
)

// Breaker is a per-endpoint circuit breaker; safe for concurrent use.
type Breaker struct {
	mu        sync.Mutex
	endpoint  string
	threshold int
	cooldown  time.Duration

	state       int
	consecutive int       // consecutive failures while closed
	openedAt    time.Time // when the circuit last opened
	probing     bool      // the single half-open probe is in flight
	opens       int64     // times the circuit opened (metrics)
}

// NewBreaker builds a breaker that opens after threshold consecutive
// failures (default 5) and half-opens after cooldown (default 5s).
func NewBreaker(endpoint string, threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = 5
	}
	if cooldown <= 0 {
		cooldown = 5 * time.Second
	}
	return &Breaker{endpoint: endpoint, threshold: threshold, cooldown: cooldown}
}

// Allow gates one call: nil means proceed (and report the outcome via
// Success/Failure); a non-nil *ScoreError means the circuit is open and the
// call must fail fast without touching the backend. At most one caller per
// cooldown window is admitted as the half-open probe.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if time.Since(b.openedAt) < b.cooldown {
			return b.openErrLocked()
		}
		// Cooldown elapsed: this caller becomes the probe.
		b.state = breakerHalfOpen
		b.probing = true
		return nil
	default: // half-open
		if b.probing {
			return b.openErrLocked()
		}
		b.probing = true
		return nil
	}
}

func (b *Breaker) openErrLocked() error {
	return &ScoreError{
		Kind:     KindBreaker,
		Endpoint: b.endpoint,
		Err: fmt.Errorf("%w after %d consecutive failures; next probe in %s",
			ErrBreakerOpen, b.threshold, (b.cooldown - time.Since(b.openedAt)).Round(time.Millisecond)),
	}
}

// Success reports a call that completed: the probe (or any closed-state
// success) closes the circuit and clears the failure streak.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.consecutive = 0
	b.probing = false
}

// Failure reports a backend-health failure (transient transport errors and
// 5xx — the caller filters out request-shaped 4xx): the probe failing
// re-opens the circuit for another cooldown; a closed-state streak reaching
// the threshold opens it.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.state = breakerOpen
		b.openedAt = time.Now()
		b.probing = false
		b.opens++
	case breakerClosed:
		b.consecutive++
		if b.consecutive >= b.threshold {
			b.state = breakerOpen
			b.openedAt = time.Now()
			b.opens++
		}
	}
}

// State reports the breaker state as a gauge value: 0 closed, 1 open, 2
// half-open.
func (b *Breaker) State() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == breakerOpen && time.Since(b.openedAt) >= b.cooldown {
		return breakerHalfOpen // the next Allow will admit a probe
	}
	return b.state
}

// ---- shared per-endpoint registry ----

// The engine rebuilds its UDF scorer per compiled query (see
// SetUDFScorerFactory), so breakers must outlive any one scorer: the
// registry keys them by endpoint, and every scorer built for that endpoint
// shares the same circuit state.
var (
	breakerMu  sync.Mutex
	breakers   = map[string]*Breaker{}
	breakerSeq []string // insertion order, for stable gauge output
)

// SharedBreaker returns the process-wide breaker for endpoint, creating it
// with the given tuning on first use (later calls reuse the existing
// breaker and ignore the tuning).
func SharedBreaker(endpoint string, threshold int, cooldown time.Duration) *Breaker {
	breakerMu.Lock()
	defer breakerMu.Unlock()
	if b, ok := breakers[endpoint]; ok {
		return b
	}
	b := NewBreaker(endpoint, threshold, cooldown)
	breakers[endpoint] = b
	breakerSeq = append(breakerSeq, endpoint)
	return b
}

// ResetBreakers clears the shared registry (test isolation).
func ResetBreakers() {
	breakerMu.Lock()
	defer breakerMu.Unlock()
	breakers = map[string]*Breaker{}
	breakerSeq = nil
}

// BreakerGauges exports per-endpoint breaker state plus the process-wide
// retry/fallback counters for /metrics (attach via server.AttachGauges).
func BreakerGauges() map[string]float64 {
	breakerMu.Lock()
	defer breakerMu.Unlock()
	out := map[string]float64{
		"flock_scorer_retries_total":   float64(scorerRetries.Load()),
		"flock_scorer_fallbacks_total": float64(scorerFallbacks.Load()),
	}
	for _, ep := range breakerSeq {
		b := breakers[ep]
		b.mu.Lock()
		state, opens := b.state, b.opens
		if state == breakerOpen && time.Since(b.openedAt) >= b.cooldown {
			state = breakerHalfOpen
		}
		b.mu.Unlock()
		out[fmt.Sprintf(`flock_scorer_breaker_state{endpoint=%q}`, ep)] = float64(state)
		out[fmt.Sprintf(`flock_scorer_breaker_opens_total{endpoint=%q}`, ep)] = float64(opens)
	}
	return out
}
