package onnx

import (
	"fmt"

	"repro/internal/ml"
)

// Export converts a trained ml.Pipeline into a Graph. The conversion is
// exact: a Session over the exported graph produces bit-identical scores to
// Pipeline.PredictBatch (the paper's requirement that deployment "preserves
// the exact behavior crafted by the data scientist").
func Export(p *ml.Pipeline) (*Graph, error) {
	if p == nil || p.Feat == nil || p.Pred == nil {
		return nil, fmt.Errorf("onnx: Export: pipeline %q is incomplete", pipeName(p))
	}
	g := &Graph{Name: p.Name, Output: "score"}
	for i := range p.Feat.Slots {
		slot := &p.Feat.Slots[i]
		node := FeatNode{Input: slot.ColName, Offset: slot.Offset}
		var kind ColumnKind
		switch enc := slot.Encoder.(type) {
		case *ml.StandardScaler:
			node.Op = OpScaler
			node.Mean, node.Scale = enc.Mean, enc.Scale
			kind = ml.KindNumeric
		case *ml.OneHotEncoder:
			node.Op = OpOneHot
			node.Categories = append([]string(nil), enc.Categories...)
			kind = ml.KindCategorical
		case *ml.HashingVectorizer:
			node.Op = OpHashText
			node.Buckets = enc.Width()
			kind = ml.KindText
		default:
			return nil, fmt.Errorf("onnx: Export: unsupported encoder %T on column %q", enc, slot.ColName)
		}
		g.Feats = append(g.Feats, node)
		g.Inputs = append(g.Inputs, InputSpec{Name: slot.ColName, Kind: kind})
	}

	switch m := p.Pred.(type) {
	case *ml.LinearRegression:
		g.Model = ModelNode{Op: OpLinear, Coeff: append([]float64(nil), m.Weights...), Intercept: m.Intercept}
	case *ml.LogisticRegression:
		g.Model = ModelNode{Op: OpLinear, Coeff: append([]float64(nil), m.Weights...), Intercept: m.Intercept, PostSigmoid: true}
	case *ml.DecisionTree:
		g.Model = ModelNode{Op: OpTreeEnsemble, Trees: []Tree{exportTree(m)}, Base: 0, Rate: 1}
	case *ml.GradientBoosting:
		rate := m.LearningRate
		if rate == 0 {
			rate = 0.1
		}
		node := ModelNode{Op: OpTreeEnsemble, Base: m.Base, Rate: rate, PostSigmoid: m.Loss == ml.LossLogistic}
		for _, t := range m.Trees {
			node.Trees = append(node.Trees, exportTree(t))
		}
		g.Model = node
	default:
		return nil, fmt.Errorf("onnx: Export: unsupported predictor %T", m)
	}

	g.Relayout()
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("onnx: Export produced an invalid graph: %w", err)
	}
	return g, nil
}

func exportTree(t *ml.DecisionTree) Tree {
	n := len(t.Nodes)
	tr := Tree{
		Feature:   make([]int32, n),
		Threshold: make([]float64, n),
		Left:      make([]int32, n),
		Right:     make([]int32, n),
		Value:     make([]float64, n),
	}
	for i, node := range t.Nodes {
		tr.Feature[i] = node.Feature
		tr.Threshold[i] = node.Threshold
		tr.Left[i] = node.Left
		tr.Right[i] = node.Right
		tr.Value[i] = node.Value
	}
	return tr
}

func pipeName(p *ml.Pipeline) string {
	if p == nil {
		return "<nil>"
	}
	return p.Name
}
