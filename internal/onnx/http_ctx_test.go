package onnx

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/ml"
)

// TestHTTPScorerContextCancel points the scorer at an endpoint that never
// answers and proves cancellation unwinds the in-flight request promptly —
// a hung model service cannot wedge the caller.
func TestHTTPScorerContextCancel(t *testing.T) {
	p, f, _ := trainedPipeline(t, &ml.GradientBoosting{NTrees: 5, Loss: ml.LossLogistic}, 100)
	g, err := Export(p)
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{}, 1)
	unblock := make(chan struct{})
	hang := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case entered <- struct{}{}:
		default:
		}
		// Hold the request open until the test ends (the client must
		// escape via its own context, not because we answered).
		<-unblock
	}))
	defer hang.Close()
	defer close(unblock) // LIFO: unblocks the handler before hang.Close waits

	client := NewHTTPScorer(g, hang.URL, 0)
	b, err := BatchFromFrame(g, f)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := client.ScoreContext(ctx, b)
		done <- err
	}()
	select {
	case <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("request never reached the hung service")
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled scoring call did not return")
	}
}

// TestScoringServerCloseDrainsInFlight holds a request half-sent while
// Close begins: graceful shutdown must wait for the in-flight request and
// serve its response instead of dropping the connection.
func TestScoringServerCloseDrainsInFlight(t *testing.T) {
	p, f, _ := trainedPipeline(t, &ml.GradientBoosting{NTrees: 5, Loss: ml.LossLogistic}, 200)
	g, err := Export(p)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeGraph(g)
	if err != nil {
		t.Skipf("loopback listener unavailable: %v", err)
	}
	b, err := BatchFromFrame(g, f)
	if err != nil {
		t.Fatal(err)
	}
	wire, err := encodeBatchJSON(g, b)
	if err != nil {
		t.Fatal(err)
	}

	addr := srv.URL[len("http://") : len(srv.URL)-len("/score")]
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send the header and half the body, so the server is mid-request...
	fmt.Fprintf(conn, "POST /score HTTP/1.1\r\nHost: x\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n", len(wire))
	if _, err := conn.Write(wire[:len(wire)/2]); err != nil {
		t.Fatal(err)
	}
	// ...then start the graceful close while the request is in flight.
	closeDone := make(chan error, 1)
	go func() { closeDone <- srv.Close() }()
	time.Sleep(50 * time.Millisecond)
	if _, err := conn.Write(wire[len(wire)/2:]); err != nil {
		t.Fatalf("connection dropped mid-request during close: %v", err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	status, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatalf("no response to in-flight request during close: %v", err)
	}
	if !strings.Contains(status, "200") {
		t.Fatalf("in-flight request failed during close: %q", status)
	}
	select {
	case err := <-closeDone:
		if err != nil {
			t.Fatalf("graceful close: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("close never returned")
	}
}

// TestScoringServerReadTimeout proves a stalled client cannot pin a
// connection past the configured read timeout.
func TestScoringServerReadTimeout(t *testing.T) {
	p, _, _ := trainedPipeline(t, &ml.GradientBoosting{NTrees: 5, Loss: ml.LossLogistic}, 100)
	g, err := Export(p)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := ServeGraphOpts(g, &ServerOptions{ReadTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Skipf("loopback listener unavailable: %v", err)
	}
	defer srv.Close()

	addr := srv.URL[len("http://") : len(srv.URL)-len("/score")]
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send a partial request and stall; the server must hang up.
	if _, err := conn.Write([]byte("POST /score HTTP/1.1\r\nHost: x\r\nContent-Length: 1000\r\n\r\n")); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		// A response byte also means the server refused to wait (4xx) — but
		// with a stalled body it should simply close the connection.
		t.Log("server answered instead of closing; acceptable")
	}
}
