package onnx

import (
	"context"
	"math/rand"
	"sync/atomic"
	"time"
)

// ResilientScorer wraps a remote scorer with the standard availability
// ladder: circuit breaker (fail fast while the backend is down), bounded
// retry with jittered exponential backoff (ride out blips), and an
// optional fallback scorer (serve from the native in-process model when the
// remote form is unavailable). Scoring is idempotent — a batch scored twice
// yields the same scores — which is what makes blind retry safe here.
type ResilientScorer struct {
	// S is the primary (remote) scorer.
	S Scorer
	// Breaker, when set, gates every attempt; use SharedBreaker so the
	// circuit state survives scorer rebuilds.
	Breaker *Breaker
	// Fallback, when set, serves the batch after the primary is exhausted
	// (retries spent, non-transient failure, or open breaker).
	Fallback Scorer
	// MaxRetries bounds re-attempts after the first try; default 2.
	MaxRetries int
	// BaseBackoff seeds the exponential backoff (doubled per retry, ±50%
	// jitter so synchronized clients don't re-converge); default 50ms.
	BaseBackoff time.Duration
}

// Process-wide resilience counters, exported by BreakerGauges.
var (
	scorerRetries   atomic.Int64
	scorerFallbacks atomic.Int64
)

func (r *ResilientScorer) retries() int {
	if r.MaxRetries > 0 {
		return r.MaxRetries
	}
	return 2
}

func (r *ResilientScorer) backoff(attempt int) time.Duration {
	base := r.BaseBackoff
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	d := base << attempt
	// ±50% jitter.
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// Score scores without a cancellation context.
func (r *ResilientScorer) Score(b *Batch) ([]float64, error) {
	return r.ScoreContext(context.Background(), b)
}

// ScoreContext drives the ladder. The caller's context always wins: its
// cancellation is returned as-is (never retried, never masked by the
// fallback), matching how the serving layer classifies timeouts.
func (r *ResilientScorer) ScoreContext(ctx context.Context, b *Batch) ([]float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	var lastErr error
	attempts := r.retries() + 1
	for i := 0; i < attempts; i++ {
		if r.Breaker != nil {
			if err := r.Breaker.Allow(); err != nil {
				// Open circuit: no point iterating the retry budget.
				lastErr = err
				break
			}
		}
		scores, err := ScoreWithContext(ctx, r.S, b)
		if err == nil {
			if r.Breaker != nil {
				r.Breaker.Success()
			}
			return scores, nil
		}
		if ctx.Err() != nil {
			// The caller's deadline/cancel fired; the backend is not to
			// blame and the caller is gone — stop immediately.
			return nil, err
		}
		lastErr = err
		transient := false
		if se, ok := err.(*ScoreError); ok { //nolint:errorlint // the scorer returns its own top-level type
			transient = se.Transient()
			if r.Breaker != nil && transient {
				// Only backend-health failures feed the breaker; a 4xx says
				// the request is bad, not the backend.
				r.Breaker.Failure()
			}
		}
		if !transient || i == attempts-1 {
			break
		}
		scorerRetries.Add(1)
		select {
		case <-time.After(r.backoff(i)):
		case <-ctx.Done():
			return nil, lastErr
		}
	}
	if r.Fallback != nil {
		scorerFallbacks.Add(1)
		return ScoreWithContext(ctx, r.Fallback, b)
	}
	return nil, lastErr
}

// LocalScorer adapts a planned native Session to the Scorer interface —
// the in-process fallback for models that have both a remote deployment
// and a native graph registered.
type LocalScorer struct {
	S *Session
}

// NewLocalScorer plans g for native in-process scoring.
func NewLocalScorer(g *Graph) (*LocalScorer, error) {
	s, err := NewSession(g)
	if err != nil {
		return nil, err
	}
	return &LocalScorer{S: s}, nil
}

// Score runs the batch through the native session.
func (l *LocalScorer) Score(b *Batch) ([]float64, error) { return l.S.Run(b) }
