package onnx

import (
	"math"

	"repro/internal/ml"
)

// This file implements the model-side rewrites used by the cross-optimizer
// (internal/opt): input pruning from model sparsity, stats-driven model
// compression, and predicate push-up into the model. All transforms operate
// on a Clone of the deployed graph; deployed models are immutable.

// PruneResult describes the effect of PruneUnusedFeatures.
type PruneResult struct {
	DroppedInputs  []string // input columns no longer read at all
	KeptFeatures   int
	TotalFeatures  int
	DroppedColumns int // one-hot categories removed
}

// PruneUnusedFeatures removes featurizer output slots the model never reads
// ("automatic pruning (projection) of unused input feature-columns
// exploiting model-sparsity"). Whole featurizer nodes whose block is unused
// are dropped — along with their input columns — and one-hot encoders are
// narrowed to the categories the model actually tests. Feature indices in
// the model are remapped accordingly. The graph is modified in place.
func PruneUnusedFeatures(g *Graph) PruneResult {
	res := PruneResult{TotalFeatures: g.Width()}
	used := make([]bool, g.Width())
	for _, f := range g.UsedFeatures() {
		used[f] = true
	}

	// Decide, per featurizer node, which output slots survive.
	remap := make([]int, g.Width()) // old feature index -> new, -1 if dropped
	for i := range remap {
		remap[i] = -1
	}
	var kept []FeatNode
	next := 0
	for _, node := range g.Feats {
		w := node.Width()
		switch node.Op {
		case OpOneHot:
			var cats []string
			for slot := 0; slot < w; slot++ {
				if used[node.Offset+slot] {
					remap[node.Offset+slot] = next
					next++
					cats = append(cats, node.Categories[slot])
				} else {
					res.DroppedColumns++
				}
			}
			if len(cats) == 0 {
				res.DroppedInputs = append(res.DroppedInputs, node.Input)
				continue
			}
			node.Categories = cats
			kept = append(kept, node)
		default:
			// Scalers and hashers are kept or dropped atomically: a scaler
			// has one slot; a hash block is either referenced or not.
			anyUsed := false
			for slot := 0; slot < w; slot++ {
				if used[node.Offset+slot] {
					anyUsed = true
					break
				}
			}
			if !anyUsed {
				res.DroppedInputs = append(res.DroppedInputs, node.Input)
				continue
			}
			for slot := 0; slot < w; slot++ {
				remap[node.Offset+slot] = next
				next++
			}
			kept = append(kept, node)
		}
	}
	g.Feats = kept
	res.KeptFeatures = next

	// Drop unused input declarations.
	stillRead := map[string]bool{}
	for i := range g.Feats {
		stillRead[g.Feats[i].Input] = true
	}
	var inputs []InputSpec
	for _, in := range g.Inputs {
		if stillRead[in.Name] {
			inputs = append(inputs, in)
		}
	}
	g.Inputs = inputs

	// Remap model feature references.
	switch g.Model.Op {
	case OpLinear:
		coeff := make([]float64, next)
		for old, c := range g.Model.Coeff {
			if n := remap[old]; n >= 0 {
				coeff[n] = c
			}
		}
		g.Model.Coeff = coeff
	case OpTreeEnsemble:
		for ti := range g.Model.Trees {
			tr := &g.Model.Trees[ti]
			for j := range tr.Feature {
				if tr.Left[j] >= 0 {
					tr.Feature[j] = int32(remap[tr.Feature[j]])
				}
			}
		}
	}
	g.Relayout()
	return res
}

// ColumnStats carries per-input-column data statistics collected by the
// engine; the compression pass uses them to specialize the model to the
// data actually stored.
type ColumnStats struct {
	HasRange bool
	Min, Max float64
	// Categories is the set of distinct values for categorical columns;
	// nil means unknown.
	Categories map[string]bool
}

// Stats maps input column names to their statistics.
type Stats map[string]ColumnStats

// CompressResult describes the effect of CompressWithStats.
type CompressResult struct {
	NodesBefore, NodesAfter int // total tree nodes
	CategoriesDropped       int
	Prune                   PruneResult
}

// CompressWithStats specializes the graph to the given column statistics
// ("model compression exploiting input data statistics"):
//
//   - one-hot categories that never occur in the data become constant-zero
//     features, so tree branches testing them are resolved statically and
//     the indicator columns are dropped;
//   - numeric ranges propagate through tree splits, removing branches that
//     no stored row can reach.
//
// The transform finishes with a PruneUnusedFeatures pass to reclaim the
// feature slots the simplification freed. The graph is modified in place.
func CompressWithStats(g *Graph, stats Stats) CompressResult {
	var res CompressResult

	// Per-feature value intervals implied by the stats.
	lo := make([]float64, g.Width())
	hi := make([]float64, g.Width())
	for i := range lo {
		lo[i] = math.Inf(-1)
		hi[i] = math.Inf(1)
	}
	for i := range g.Feats {
		node := &g.Feats[i]
		st, ok := stats[node.Input]
		if !ok {
			continue
		}
		switch node.Op {
		case OpScaler:
			if st.HasRange {
				lo[node.Offset] = (st.Min - node.Mean) / node.Scale
				hi[node.Offset] = (st.Max - node.Mean) / node.Scale
				if lo[node.Offset] > hi[node.Offset] {
					lo[node.Offset], hi[node.Offset] = hi[node.Offset], lo[node.Offset]
				}
			}
		case OpOneHot:
			if st.Categories == nil {
				continue
			}
			for slot, cat := range node.Categories {
				f := node.Offset + slot
				lo[f] = 0
				if st.Categories[cat] {
					hi[f] = 1
				} else {
					hi[f] = 0 // constant zero: category absent from data
					res.CategoriesDropped++
				}
			}
		}
	}

	if g.Model.Op == OpTreeEnsemble {
		for ti := range g.Model.Trees {
			res.NodesBefore += len(g.Model.Trees[ti].Feature)
			g.Model.Trees[ti] = simplifyTree(&g.Model.Trees[ti], lo, hi)
			res.NodesAfter += len(g.Model.Trees[ti].Feature)
		}
	} else {
		res.NodesBefore, res.NodesAfter = 0, 0
	}

	res.Prune = PruneUnusedFeatures(g)
	return res
}

// simplifyTree rebuilds a tree, resolving splits that are decided by the
// feature intervals and tightening intervals down each branch.
func simplifyTree(tr *Tree, lo, hi []float64) Tree {
	var out Tree
	// local copies so sibling branches don't interfere
	var build func(node int32, lo, hi []float64) int32
	build = func(node int32, lo, hi []float64) int32 {
		if tr.Left[node] < 0 { // leaf
			idx := int32(len(out.Feature))
			out.Feature = append(out.Feature, 0)
			out.Threshold = append(out.Threshold, 0)
			out.Left = append(out.Left, -1)
			out.Right = append(out.Right, -1)
			out.Value = append(out.Value, tr.Value[node])
			return idx
		}
		f := tr.Feature[node]
		t := tr.Threshold[node]
		if hi[f] < t { // every reachable value goes left
			return build(tr.Left[node], lo, hi)
		}
		if lo[f] >= t { // every reachable value goes right
			return build(tr.Right[node], lo, hi)
		}
		idx := int32(len(out.Feature))
		out.Feature = append(out.Feature, f)
		out.Threshold = append(out.Threshold, t)
		out.Left = append(out.Left, -1)
		out.Right = append(out.Right, -1)
		out.Value = append(out.Value, tr.Value[node])

		savedHi := hi[f]
		hi[f] = math.Min(hi[f], math.Nextafter(t, math.Inf(-1)))
		left := build(tr.Left[node], lo, hi)
		hi[f] = savedHi

		savedLo := lo[f]
		lo[f] = math.Max(lo[f], t)
		right := build(tr.Right[node], lo, hi)
		lo[f] = savedLo

		out.Left[idx] = left
		out.Right[idx] = right
		return idx
	}
	root := build(0, lo, hi)
	if root != 0 {
		// Defensive: build emits the surviving root first, so root should
		// always be 0; re-root if that invariant is ever violated.
		out = reroot(out, root)
	}
	return out
}

// reroot rebuilds the tree arrays so that `root` becomes index 0.
func reroot(tr Tree, root int32) Tree {
	var out Tree
	var walk func(n int32) int32
	walk = func(n int32) int32 {
		idx := int32(len(out.Feature))
		out.Feature = append(out.Feature, tr.Feature[n])
		out.Threshold = append(out.Threshold, tr.Threshold[n])
		out.Left = append(out.Left, -1)
		out.Right = append(out.Right, -1)
		out.Value = append(out.Value, tr.Value[n])
		if tr.Left[n] >= 0 {
			l := walk(tr.Left[n])
			r := walk(tr.Right[n])
			out.Left[idx] = l
			out.Right[idx] = r
		}
		return idx
	}
	walk(root)
	return out
}

// PushUpThreshold rewrites "sigmoid(raw) >= p" into "raw >= logit(p)",
// removing the sigmoid from the scoring loop ("predicate push-up ... between
// SQL queries and ML models"). It returns the rewritten constant and whether
// the rewrite applied (the model must end in a sigmoid and p must be in
// (0, 1)). The graph is modified in place.
func PushUpThreshold(g *Graph, p float64) (rawThreshold float64, ok bool) {
	if !g.Model.PostSigmoid || p <= 0 || p >= 1 {
		return 0, false
	}
	g.Model.PostSigmoid = false
	return ml.Logit(p), true
}
