package onnx

import (
	"context"
	"errors"
	"fmt"
	"net"
	"syscall"
)

// Typed scoring-transport errors. The breaker, the retry loop, and the
// serving layer's metrics all need to tell a dead backend (connection
// refused, DNS failure) from a slow one (timeout) from an unhealthy one
// (HTTP 5xx) — string-prefix matching cannot. Every message still starts
// with "onnx:" so the repo's error-prefix convention (and older callers
// matching on it) keeps working.

// ErrorKind classifies how a remote scoring call failed.
type ErrorKind int

const (
	KindUnknown ErrorKind = iota
	KindConnect           // endpoint unreachable: DNS failure, connection refused
	KindTimeout           // the request deadline expired
	KindHTTP              // the backend answered with a non-200 status
	KindBreaker           // the circuit breaker is open; no request was sent
)

// String is the metrics label for the kind.
func (k ErrorKind) String() string {
	switch k {
	case KindConnect:
		return "connect"
	case KindTimeout:
		return "timeout"
	case KindHTTP:
		return "http"
	case KindBreaker:
		return "breaker"
	}
	return "unknown"
}

// ScoreError is a failed remote scoring call, classified.
type ScoreError struct {
	Kind     ErrorKind
	Status   int    // HTTP status when Kind == KindHTTP
	Endpoint string // the scoring URL involved
	Err      error  // underlying cause
}

func (e *ScoreError) Error() string {
	switch e.Kind {
	case KindHTTP:
		return fmt.Sprintf("onnx: http scorer: backend %s returned %d: %v", e.Endpoint, e.Status, e.Err)
	case KindBreaker:
		return fmt.Sprintf("onnx: http scorer: circuit breaker open for %s: %v", e.Endpoint, e.Err)
	default:
		return fmt.Sprintf("onnx: http scorer: %s %s: %v", e.Kind, e.Endpoint, e.Err)
	}
}

func (e *ScoreError) Unwrap() error { return e.Err }

// Transient reports whether retrying the same call can plausibly succeed:
// connect failures, timeouts, and backend 5xx are transient; 4xx (the
// request itself is bad) and an open breaker (retrying immediately defeats
// its purpose) are not.
func (e *ScoreError) Transient() bool {
	switch e.Kind {
	case KindConnect, KindTimeout:
		return true
	case KindHTTP:
		return e.Status >= 500
	}
	return false
}

// classifyTransport wraps a transport-level error (http.Client.Do) into a
// ScoreError with the right kind.
func classifyTransport(endpoint string, err error) *ScoreError {
	kind := KindUnknown
	var ne net.Error
	var dns *net.DNSError
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		kind = KindTimeout
	case errors.As(err, &ne) && ne.Timeout():
		kind = KindTimeout
	case errors.As(err, &dns),
		errors.Is(err, syscall.ECONNREFUSED),
		errors.Is(err, syscall.EHOSTUNREACH),
		errors.Is(err, syscall.ENETUNREACH):
		kind = KindConnect
	default:
		// Remaining *net.OpErrors are dial/read failures against a dead or
		// dying peer — connect-class for breaker purposes.
		var op *net.OpError
		if errors.As(err, &op) {
			kind = KindConnect
		}
	}
	return &ScoreError{Kind: kind, Endpoint: endpoint, Err: err}
}
