package core

import (
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/infer"
	"repro/internal/ml"
	"repro/internal/onnx"
)

// constGraph builds a one-input linear graph whose score is always c —
// coeff 0 kills the feature, the intercept is the output. Distinct
// constants per version make stale-cache bleed visible through plain SQL.
func constGraph(c float64) *onnx.Graph {
	g := &onnx.Graph{
		Name:   "const",
		Inputs: []onnx.InputSpec{{Name: "age", Kind: ml.KindNumeric}},
		Feats:  []onnx.FeatNode{{Op: onnx.OpScaler, Input: "age", Mean: 0, Scale: 1}},
		Model:  onnx.ModelNode{Op: onnx.OpLinear, Coeff: []float64{0}, Intercept: c},
		Output: "score",
	}
	g.Relayout()
	return g
}

func seedEvents(t *testing.T, f *Flock, rows int) {
	t.Helper()
	if _, err := f.Exec("root", "CREATE TABLE events (id int, age float, region text)"); err != nil {
		t.Fatal(err)
	}
	regions := []string{"us", "eu", "apac"}
	for i := 0; i < rows; i++ {
		q := fmt.Sprintf("INSERT INTO events VALUES (%d, %d.0, '%s')", i, 20+i%50, regions[i%3])
		if _, err := f.Exec("root", q); err != nil {
			t.Fatal(err)
		}
	}
}

func scoresOf(t *testing.T, f *Flock, query string) []float64 {
	t.Helper()
	res, err := f.Exec("root", query)
	if err != nil {
		t.Fatalf("%s: %v", query, err)
	}
	out := make([]float64, 0, len(res.Rows))
	for _, row := range res.Rows {
		v, ok := row[len(row)-1].(float64)
		if !ok {
			t.Fatalf("score column is %T, want float64", row[len(row)-1])
		}
		out = append(out, v)
	}
	return out
}

// TestInferPlaneEndToEnd routes real SQL PREDICT through the plane and
// asserts scores are identical to the direct engine paths, and that the
// plane actually saw the traffic (cache + batch gauges move).
func TestInferPlaneEndToEnd(t *testing.T) {
	f := newFlock(t)
	seedEvents(t, f, 60)
	if _, err := f.DeployPipeline("root", "churn", trainPipe(t), TrainingInfo{Script: "infer_test"}); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT id, PREDICT(churn, age, region) AS s FROM events ORDER BY id"
	baseline := scoresOf(t, f, q)

	p := f.EnableInferPlane(infer.Config{BatchWindow: time.Millisecond})
	defer f.DisableInferPlane()

	got := scoresOf(t, f, q)
	if len(got) != len(baseline) {
		t.Fatalf("row count %d != %d", len(got), len(baseline))
	}
	for i := range got {
		if math.Abs(got[i]-baseline[i]) > 1e-12 {
			t.Fatalf("row %d: plane score %v != direct %v", i, got[i], baseline[i])
		}
	}
	// A second pass over the same rows should be served from the score cache.
	_ = scoresOf(t, f, q)
	g := p.Gauges()
	if g["flock_infer_cache_hits_total"] == 0 {
		t.Fatalf("expected cache hits after repeat query, gauges: %v", g)
	}
	if g["flock_infer_batch_calls_total"]+g["flock_infer_direct_total"] == 0 {
		t.Fatalf("plane saw no scoring traffic, gauges: %v", g)
	}
}

// TestInferBatchChaosZeroFailedQueries is the acceptance chaos drill: with
// the infer.batch failpoint armed, every PREDICT query must still succeed
// (degrading to direct scoring) and return the same scores as the healthy
// plane.
func TestInferBatchChaosZeroFailedQueries(t *testing.T) {
	f := newFlock(t)
	seedEvents(t, f, 40)
	if _, err := f.DeployPipeline("root", "churn", trainPipe(t), TrainingInfo{Script: "infer_chaos"}); err != nil {
		t.Fatal(err)
	}
	const q = "SELECT id, PREDICT(churn, age, region) AS s FROM events ORDER BY id"
	baseline := scoresOf(t, f, q)

	p := f.EnableInferPlane(infer.Config{BatchWindow: 500 * time.Microsecond})
	defer f.DisableInferPlane()

	fault.Enable("infer.batch", fault.Spec{}) // deterministic: every flush fails
	defer fault.Reset()

	const workers = 8
	const iters = 5
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			user := fmt.Sprintf("chaos%d", w)
			f.Access.AssignRole(user, "admin")
			for i := 0; i < iters; i++ {
				res, err := f.Exec(user, q)
				if err != nil {
					errs <- fmt.Errorf("worker %d iter %d: %w", w, i, err)
					return
				}
				for r, row := range res.Rows {
					if got := row[len(row)-1].(float64); math.Abs(got-baseline[r]) > 1e-12 {
						errs <- fmt.Errorf("worker %d iter %d row %d: %v != %v", w, i, r, got, baseline[r])
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	g := p.Gauges()
	if g["flock_infer_degraded_total"] == 0 {
		t.Fatalf("expected degraded fallbacks with infer.batch armed, gauges: %v", g)
	}
}

// TestRetrainMidFlightGenerationSafety redeploys the model while queries
// are in flight and asserts the cache never bleeds a score across
// versions: every result is one of the two deployed constants, and once
// redeploys stop, a fresh query observes the final version.
func TestRetrainMidFlightGenerationSafety(t *testing.T) {
	f := newFlock(t)
	seedEvents(t, f, 20)
	consts := []float64{0.25, 0.75}
	if _, err := f.DeployGraph("root", "const", constGraph(consts[0]), TrainingInfo{}); err != nil {
		t.Fatal(err)
	}
	f.EnableInferPlane(infer.Config{BatchWindow: 250 * time.Microsecond})
	defer f.DisableInferPlane()

	const q = "SELECT id, PREDICT(const, age) AS s FROM events ORDER BY id"

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for k := 1; k <= 12; k++ {
			time.Sleep(2 * time.Millisecond)
			if _, err := f.DeployGraph("root", "const", constGraph(consts[k%2]), TrainingInfo{}); err != nil {
				t.Error(err)
				break
			}
		}
		close(stop)
	}()

	var qwg sync.WaitGroup
	errs := make(chan error, 4)
	for w := 0; w < 4; w++ {
		qwg.Add(1)
		go func(w int) {
			defer qwg.Done()
			user := fmt.Sprintf("retrain%d", w)
			f.Access.AssignRole(user, "admin")
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := f.Exec(user, q)
				if err != nil {
					select {
					case errs <- err:
					default:
					}
					return
				}
				for _, row := range res.Rows {
					s := row[len(row)-1].(float64)
					if s != consts[0] && s != consts[1] {
						select {
						case errs <- fmt.Errorf("score %v is neither deployed constant", s):
						default:
						}
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	qwg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// After the churn settles the cache must serve the final version only.
	final := consts[12%2]
	for _, s := range scoresOf(t, f, q) {
		if s != final {
			t.Fatalf("post-redeploy score %v, want %v", s, final)
		}
	}
}
