package core

import (
	"context"
	"sync"

	"repro/internal/engine"
	"repro/internal/opt"
	"repro/internal/sql"
)

// Prepared is a parsed, analyzed and (for SELECTs) planned statement that
// can be executed repeatedly without re-parsing or re-planning. The serving
// layer's plan cache stores these keyed on (SQL, opt.Level).
//
// A cached plan can go stale: a DML write bumps a scanned table's version
// (invalidating pushed-down stats and time-travel snapshots), and a model
// deploy or promotion changes what PREDICT resolves to (the plan embeds a
// possibly-rewritten model graph). ExecPrepared revalidates both before
// every run and transparently replans on mismatch, so a stale cache entry
// costs one replan, never a wrong answer.
type Prepared struct {
	SQL   string
	Level opt.Level

	stmt sql.Statement
	acc  sql.Access
	text string // canonical formatted statement

	mu       sync.Mutex
	plan     *opt.Plan        // non-nil for SELECT statements
	tables   map[string]int64 // scanned table -> version at plan time
	modelGen int64            // registry generation at plan time
}

// Kind reports the statement kind ("select", "insert", ...).
func (p *Prepared) Kind() string { return stmtAction(p.stmt) }

// Text returns the canonical formatted statement.
func (p *Prepared) Text() string { return p.text }

// Prepare parses and analyzes a single statement and, for SELECTs, plans it
// at the given level. The returned Prepared is safe for concurrent
// ExecPrepared calls.
func (f *Flock) Prepare(query string, level opt.Level) (*Prepared, error) {
	return f.prepare("", query, level)
}

// PrepareAs is Prepare gated on the governance path: access is checked (and
// denials audited) BEFORE any planning happens, so an unauthorized user can
// neither spend planner work nor learn schema details from planner errors.
// The returned Prepared is user-independent — ExecPrepared (and
// CheckPrepared, for cached entries) re-check access per execution.
func (f *Flock) PrepareAs(user, query string, level opt.Level) (*Prepared, error) {
	return f.prepare(user, query, level)
}

func (f *Flock) prepare(user, query string, level opt.Level) (*Prepared, error) {
	stmt, err := sql.ParseOne(query)
	if err != nil {
		return nil, err
	}
	p := &Prepared{
		SQL: query, Level: level,
		stmt: stmt, acc: sql.Analyze(stmt), text: sql.FormatStatement(stmt),
	}
	if user != "" {
		if err := f.CheckPrepared(user, p); err != nil {
			return nil, err
		}
	}
	if sel, ok := stmt.(*sql.SelectStmt); ok {
		p.mu.Lock()
		err := p.replanLocked(f, sel)
		p.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	return p, nil
}

// CheckPrepared applies the same access checks ExecPrepared would, auditing
// a denial. Servers call it when handing out a cache-shared Prepared to a
// different user than the one that planned it.
func (f *Flock) CheckPrepared(user string, p *Prepared) error {
	if err := f.checkAccess(user, p.stmt, p.acc); err != nil {
		f.Audit.Record(user, "denied", firstObject(p.acc), truncate(p.text), false)
		return err
	}
	return nil
}

// ExecPrepared runs a prepared statement on behalf of user with the full
// governance path of Exec: access check, eager provenance capture, query
// log, and audit — only the parse (and usually the plan) is amortized.
func (f *Flock) ExecPrepared(ctx context.Context, user string, p *Prepared) (*engine.Result, error) {
	if err := f.checkAccess(user, p.stmt, p.acc); err != nil {
		f.Audit.Record(user, "denied", firstObject(p.acc), truncate(p.text), false)
		return nil, err
	}
	f.Prov.CaptureStmt(p.stmt, p.text, user)
	f.DB.LogStatement(p.text, user)

	var res *engine.Result
	var err error
	if sel, ok := p.stmt.(*sql.SelectStmt); ok {
		var plan *opt.Plan
		plan, err = p.freshPlan(f, sel)
		if err == nil {
			var rs *engine.RowSet
			rs, err = f.DB.ExecPlanContext(ctx, plan, engine.ExecOptions{Level: p.Level})
			if err == nil {
				res = engine.ResultFromRowSet(rs)
			}
		}
	} else {
		res, err = f.DB.ExecStmtContext(ctx, p.stmt, engine.ExecOptions{Level: p.Level})
	}
	f.Audit.Record(user, stmtAction(p.stmt), firstObject(p.acc), truncate(p.text), err == nil)
	return res, err
}

// freshPlan returns the cached plan when still valid, replanning otherwise.
func (p *Prepared) freshPlan(f *Flock, sel *sql.SelectStmt) (*opt.Plan, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.plan != nil && p.modelGen == f.Models.Generation() {
		fresh := true
		for name, ver := range p.tables {
			t, err := f.DB.Table(name)
			if err != nil || t.Version() != ver {
				fresh = false
				break
			}
		}
		if fresh {
			return p.plan, nil
		}
	}
	if err := p.replanLocked(f, sel); err != nil {
		return nil, err
	}
	return p.plan, nil
}

// replanLocked rebuilds the plan and records the table versions and model
// generation it was built against. Caller holds p.mu.
//
// Versions are snapshotted BEFORE planning: the plan embeds decisions
// derived from table state (stats-driven model compression, time-travel
// snapshots), so a write racing with planning must leave the recorded
// version behind the table's — forcing a replan on the next execution —
// rather than validating a plan built against pre-write statistics.
func (p *Prepared) replanLocked(f *Flock, sel *sql.SelectStmt) error {
	gen := f.Models.Generation()
	pre := map[string]int64{}
	for _, name := range p.acc.ReadTables {
		if t, err := f.DB.Table(name); err == nil {
			pre[name] = t.Version()
		}
	}
	plan, err := f.DB.PlanSelect(sel, p.Level)
	if err != nil {
		return err
	}
	tables := map[string]int64{}
	collectScanTables(plan.Root, tables)
	for name := range tables {
		v, ok := pre[name]
		if !ok {
			// Not visible to the pre-plan snapshot (cannot happen for
			// tables the analyzer sees); -1 never matches a real version,
			// so such a plan replans on every execution — safe, just slow.
			v = -1
		}
		tables[name] = v
	}
	p.plan = plan
	p.tables = tables
	p.modelGen = gen
	return nil
}

// collectScanTables gathers the base tables a plan scans.
func collectScanTables(n opt.Node, out map[string]int64) {
	switch x := n.(type) {
	case nil:
	case *opt.Scan:
		out[x.Table] = 0
	case *opt.Filter:
		collectScanTables(x.Input, out)
	case *opt.Predict:
		collectScanTables(x.Input, out)
	case *opt.Join:
		collectScanTables(x.Left, out)
		collectScanTables(x.Right, out)
	case *opt.Aggregate:
		collectScanTables(x.Input, out)
	case *opt.Project:
		collectScanTables(x.Input, out)
	case *opt.Distinct:
		collectScanTables(x.Input, out)
	case *opt.Sort:
		collectScanTables(x.Input, out)
	case *opt.Limit:
		collectScanTables(x.Input, out)
	}
}
