package core

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/opt"
)

// TestConcurrentExec hammers one Flock from parallel sessions with mixed
// reads, writes and PREDICT scoring. Run under -race it audits the whole
// Exec path (engine, governance, provenance, audit log, registry) for data
// races; functionally it asserts the audit chain stays intact and no
// statement fails.
func TestConcurrentExec(t *testing.T) {
	f := newFlock(t)
	if _, err := f.Exec("root", "CREATE TABLE events (id int, age float, region text)"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Exec("root", "INSERT INTO events VALUES (0, 44.0, 'us'), (1, 31.0, 'eu')"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.DeployPipeline("root", "churn", trainPipe(t), TrainingInfo{
		Script: "concurrent_test", Tables: []string{"events"},
		Hyperparams: map[string]string{"n_trees": "15"},
		Metrics:     map[string]string{"auc": "0.9"},
	}); err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const iters = 20
	var wg sync.WaitGroup
	errs := make(chan error, workers*iters)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			user := fmt.Sprintf("user%d", w)
			f.Access.AssignRole(user, "admin")
			for i := 0; i < iters; i++ {
				var err error
				switch i % 5 {
				case 0:
					_, err = f.Exec(user, fmt.Sprintf("INSERT INTO events VALUES (%d, %d.0, 'us')", w*1000+i, 20+i))
				case 1:
					_, err = f.Exec(user, "SELECT count(*), avg(age) FROM events")
				case 2:
					_, err = f.Exec(user, "SELECT region, count(*) FROM events GROUP BY region ORDER BY region")
				case 3:
					_, err = f.Exec(user, "SELECT id, PREDICT(churn, age, region) AS s FROM events WHERE age > 25")
				case 4:
					_, err = f.ExecLevelContext(context.Background(), user,
						fmt.Sprintf("UPDATE events SET age = age + 1 WHERE id = %d", w*1000), opt.LevelFull)
				}
				if err != nil {
					errs <- fmt.Errorf("worker %d iter %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	// Concurrent training-provenance writes exercise the catalog attr path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 10; i++ {
			f.Prov.RecordTraining("churn", 1, "retrain.py", []string{"events"},
				map[string]string{"iter": fmt.Sprint(i)}, map[string]string{"auc": "0.91"})
		}
	}()
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	if idx := f.Audit.Verify(); idx != -1 {
		t.Fatalf("audit chain corrupted at entry %d after concurrent load", idx)
	}
	// Every statement must have been captured eagerly (one query entity per
	// statement; exact counts vary with interleaving, so sanity-check scale).
	nodes, edges := f.Catalog.Size()
	if nodes == 0 || edges == 0 {
		t.Fatalf("provenance catalog empty after load: %d nodes %d edges", nodes, edges)
	}
}

// TestConcurrentPrepared runs one shared prepared statement from many
// goroutines while a writer invalidates its plan, proving revalidation is
// race-free and never serves stale results.
func TestConcurrentPrepared(t *testing.T) {
	f := newFlock(t)
	if _, err := f.Exec("root", "CREATE TABLE kv (k int, v int)"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Exec("root", "INSERT INTO kv VALUES (1, 10)"); err != nil {
		t.Fatal(err)
	}
	p, err := f.Prepare("SELECT sum(v) FROM kv", opt.LevelFull)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				if _, err := f.ExecPrepared(context.Background(), "root", p); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 25; i++ {
			if _, err := f.Exec("root", fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", i+2, i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()

	// After the dust settles the prepared plan must see the final state.
	res, err := f.ExecPrepared(context.Background(), "root", p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := f.Exec("root", "SELECT sum(v) FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res.Rows[0][0]) != fmt.Sprint(want.Rows[0][0]) {
		t.Fatalf("prepared result %v != fresh result %v (stale plan served)", res.Rows[0][0], want.Rows[0][0])
	}
}

func TestPreparedStalenessOnModelDeploy(t *testing.T) {
	f := newFlock(t)
	if _, err := f.Exec("root", "CREATE TABLE people (id int, age float, region text)"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Exec("root", "INSERT INTO people VALUES (1, 50.0, 'us')"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.DeployPipeline("root", "churn", trainPipe(t), TrainingInfo{}); err != nil {
		t.Fatal(err)
	}
	p, err := f.Prepare("SELECT PREDICT(churn, age, region) FROM people", opt.LevelFull)
	if err != nil {
		t.Fatal(err)
	}
	before, err := f.ExecPrepared(context.Background(), "root", p)
	if err != nil {
		t.Fatal(err)
	}
	gen := f.Models.Generation()
	// A new model version must invalidate the cached plan (its graph is
	// baked into the Predict operator).
	if _, err := f.DeployPipeline("root", "churn", trainPipe(t), TrainingInfo{}); err != nil {
		t.Fatal(err)
	}
	if f.Models.Generation() == gen {
		t.Fatal("registry generation did not advance on deploy")
	}
	after, err := f.ExecPrepared(context.Background(), "root", p)
	if err != nil {
		t.Fatal(err)
	}
	_ = before
	_ = after // same training data, so scores may match; the point is no error and a replan
	// The audit log must show the prepared executions under "select".
	found := false
	for _, e := range f.Audit.Entries() {
		if e.Action == "select" && strings.Contains(e.Detail, "PREDICT") {
			found = true
		}
	}
	if !found {
		t.Fatal("prepared PREDICT execution missing from audit log")
	}
}
