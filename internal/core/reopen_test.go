package core

// Durability.Reopen: the governance-layer recovery path for a degraded
// (poisoned-WAL) instance — gauges flip 1 → 0, writes resume, and nothing
// acked is lost across the fault, the reopen, and a cold restart.

import (
	"errors"
	"testing"

	"repro/internal/engine"
	"repro/internal/fault"
)

func TestDurabilityReopenRecoversDegraded(t *testing.T) {
	dir := t.TempDir()
	f, d, err := OpenDir(dir, DurabilityOptions{WALSync: true})
	if err != nil {
		t.Fatal(err)
	}
	f.Access.AssignRole("root", "admin")
	if _, err := f.Exec("root", "CREATE TABLE t (id int)"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Exec("root", "INSERT INTO t VALUES (1)"); err != nil {
		t.Fatal(err)
	}
	if g := d.Gauges(); g["flock_degraded_mode"] != 0 || g["flock_wal_poisoned"] != 0 {
		t.Fatalf("healthy gauges: %v", g)
	}

	fault.Reset()
	fault.Enable("wal.fsync", fault.Spec{})
	if _, err := f.Exec("root", "INSERT INTO t VALUES (2)"); !errors.Is(err, engine.ErrWALPoisoned) {
		t.Fatalf("insert under failing fsync = %v, want ErrWALPoisoned", err)
	}
	fault.Reset()

	if g := d.Gauges(); g["flock_degraded_mode"] != 1 || g["flock_wal_poisoned"] != 1 {
		t.Fatalf("degraded gauges: %v", g)
	}
	if _, err := f.Exec("root", "INSERT INTO t VALUES (3)"); !errors.Is(err, engine.ErrReadOnly) {
		t.Fatalf("degraded insert = %v, want ErrReadOnly", err)
	}

	if err := d.Reopen(); err != nil {
		t.Fatalf("Reopen: %v", err)
	}
	if g := d.Gauges(); g["flock_degraded_mode"] != 0 || g["flock_wal_poisoned"] != 0 {
		t.Fatalf("post-reopen gauges: %v", g)
	}
	if _, err := f.Exec("root", "INSERT INTO t VALUES (4)"); err != nil {
		t.Fatalf("post-reopen insert: %v", err)
	}
	// The audit chain survived the whole episode intact.
	if idx := f.Audit.Verify(); idx != -1 {
		t.Fatalf("audit chain corrupted at %d", idx)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Cold restart: acked rows 1 and 4 present (plus row 2, installed
	// before its failed fsync and preserved by the reopen snapshot).
	f2, d2, err := OpenDir(dir, DurabilityOptions{WALSync: true})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	f2.Access.AssignRole("root", "admin")
	res, err := f2.Exec("root", "SELECT count(*) FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if n := res.Rows[0][0].(int64); n != 3 {
		t.Fatalf("recovered %d rows, want 3", n)
	}
}
