package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/fault"
	"repro/internal/governance"
)

// Crash-safe durability for a served Flock instance: engine.OpenDirDB
// recovers tables, time-travel history, the query log and (through the
// system table) every deployed model; this file adds the audit chain —
// persisted as its own append-only frame stream, since tamper evidence
// wants an independent medium — and the background checkpointer that folds
// the WAL into snapshots while the server runs.

// auditFile holds the persisted audit chain inside the data directory.
const auditFile = "audit.log"

// DurabilityOptions tunes OpenDir.
type DurabilityOptions struct {
	// WALSync fsyncs every committed DML record before it is acknowledged
	// (the default in flock-serve); disabled, durability degrades to
	// OS-buffered writes in exchange for write latency.
	WALSync bool
}

// Durability owns a Flock's data directory: the recovery report, the audit
// persistence hook, and the checkpoint lifecycle (manual, periodic, and
// final-on-shutdown).
type Durability struct {
	db  *engine.DB
	dir string

	auditMu  sync.Mutex
	auditF   *fault.File
	auditErr error // first audit-persistence failure (surfaced on Close)

	mu             sync.Mutex
	recovery       engine.RecoveryInfo
	lastCheckpoint time.Time
	checkpoints    int64

	stopOnce  sync.Once
	closeOnce sync.Once
	stop      chan struct{}
	done      chan struct{}
	closeErr  error
}

// OpenDir opens (or initializes) a durable Flock in dir: it recovers the
// engine state (snapshot + WAL replay), rebuilds the model registry from
// the recovered system table, restores the audit chain, and wires every
// subsequent commit and audit record back into the directory. The caller
// runs the returned Durability's checkpointer (Run) and must Close it on
// shutdown for a final checkpoint.
func OpenDir(dir string, opts DurabilityOptions) (*Flock, *Durability, error) {
	return openDir(dir, opts, "")
}

// OpenDirReplica opens dir as a read-only replica of the leader at
// leaderURL: identical recovery (snapshot + WAL replay restores whatever
// frames were already shipped), but the engine is placed in replica mode
// before the facade assembles — writes fail fast with engine.ErrReadOnly,
// the model system table is never created locally (the leader's own create
// arrives as a shipped frame), and the only accepted mutations are
// replicated frames. The audit chain stays per-node: a replica audits its
// own read traffic into its own audit.log.
func OpenDirReplica(dir, leaderURL string, opts DurabilityOptions) (*Flock, *Durability, error) {
	if leaderURL == "" {
		return nil, nil, fmt.Errorf("core: OpenDirReplica requires a leader URL")
	}
	return openDir(dir, opts, leaderURL)
}

func openDir(dir string, opts DurabilityOptions, replicaOf string) (*Flock, *Durability, error) {
	db, info, err := engine.OpenDirDB(dir, opts.WALSync)
	if err != nil {
		return nil, nil, err
	}
	if replicaOf != "" {
		db.SetReplicaMode(replicaOf)
	}
	f, err := newFromDB(db)
	if err != nil {
		db.CloseDurability()
		return nil, nil, err
	}

	d := &Durability{
		db:             db,
		dir:            dir,
		recovery:       info,
		lastCheckpoint: time.Now(), // recovery consolidates into a fresh snapshot
		stop:           make(chan struct{}),
		done:           make(chan struct{}),
	}
	close(d.done) // Run replaces it; Close must not block when Run never ran

	auditPath := filepath.Join(dir, auditFile)
	entries, err := readAuditEntries(auditPath)
	if err != nil {
		db.CloseDurability()
		return nil, nil, fmt.Errorf("core: recovering audit log: %w", err)
	}
	if err := f.Audit.Restore(entries); err != nil {
		db.CloseDurability()
		return nil, nil, err
	}
	af, err := os.OpenFile(auditPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		db.CloseDurability()
		return nil, nil, fmt.Errorf("core: opening audit log: %w", err)
	}
	// Audit I/O rides the "audit.*" failpoints: a new durability file
	// must never be invisible to the chaos plane.
	d.auditF = fault.NewFile(af, "audit")
	f.Audit.SetSink(d.appendAudit)
	return f, d, nil
}

// appendAudit persists one audit entry (called under the audit log's lock,
// in chain order). Failures are remembered rather than propagated — the
// audit API has no error channel — and surfaced by Close.
func (d *Durability) appendAudit(e governance.AuditEntry) {
	d.auditMu.Lock()
	defer d.auditMu.Unlock()
	if d.auditF == nil || d.auditErr != nil {
		return
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(e); err != nil {
		d.auditErr = err
		return
	}
	if err := engine.AppendFrame(d.auditF, buf.Bytes()); err != nil {
		d.auditErr = err
	}
}

// readAuditEntries loads the persisted audit chain; a missing file is an
// empty chain, and a torn final frame (crash mid-append) is dropped — the
// entry it held was never fully recorded.
func readAuditEntries(path string) ([]governance.AuditEntry, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	var out []governance.AuditEntry
	_, err = engine.ReadFrames(f, func(payload []byte) error {
		var e governance.AuditEntry
		if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&e); err != nil {
			return err
		}
		out = append(out, e)
		return nil
	})
	return out, err
}

// Checkpoint folds the WAL into a fresh snapshot now.
func (d *Durability) Checkpoint() error {
	if err := d.db.Checkpoint(); err != nil {
		return err
	}
	d.auditMu.Lock()
	if d.auditF != nil {
		_ = d.auditF.Sync() // ride the checkpoint: audit tail becomes durable too
	}
	d.auditMu.Unlock()
	d.mu.Lock()
	d.lastCheckpoint = time.Now()
	d.checkpoints++
	d.mu.Unlock()
	return nil
}

// Reopen recovers a degraded (poisoned-WAL) instance back to read-write
// once the underlying disk fault is resolved: the engine folds the current
// in-memory state into a fresh durable snapshot, discards the poisoned log,
// and attaches a fresh WAL. Counted as a checkpoint — that is exactly what
// it is, plus a log swap. Safe (and a no-op beyond the fold) on a healthy
// instance.
func (d *Durability) Reopen() error {
	if err := d.db.ReopenWAL(); err != nil {
		return err
	}
	d.auditMu.Lock()
	if d.auditF != nil {
		_ = d.auditF.Sync()
	}
	d.auditMu.Unlock()
	d.mu.Lock()
	d.lastCheckpoint = time.Now()
	d.checkpoints++
	d.mu.Unlock()
	return nil
}

// Run starts the background checkpointer: every interval the WAL is folded
// into a snapshot, keeping both replay time and log size bounded. The loop
// stops at Close (which takes a final checkpoint itself).
func (d *Durability) Run(interval time.Duration, onErr func(error)) {
	if interval <= 0 {
		return
	}
	d.done = make(chan struct{})
	go func() {
		defer close(d.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		for {
			select {
			case <-tick.C:
				if err := d.Checkpoint(); err != nil && onErr != nil {
					onErr(err)
				}
			case <-d.stop:
				return
			}
		}
	}()
}

// Close stops the checkpointer, takes a final checkpoint (the drain-time
// fold: a clean shutdown restarts from the snapshot alone), and closes the
// log files. Safe to call once; returns the first error encountered,
// including any deferred audit-persistence failure.
func (d *Durability) Close() error {
	d.closeOnce.Do(func() {
		d.stopOnce.Do(func() { close(d.stop) })
		<-d.done
		err := d.Checkpoint()
		if werr := d.db.CloseDurability(); err == nil {
			err = werr
		}
		d.auditMu.Lock()
		if d.auditF != nil {
			if serr := d.auditF.Sync(); err == nil {
				err = serr
			}
			if cerr := d.auditF.Close(); err == nil {
				err = cerr
			}
			d.auditF = nil
		}
		if err == nil {
			err = d.auditErr
		}
		d.auditMu.Unlock()
		d.closeErr = err
	})
	return d.closeErr
}

// Recovery reports what boot-time recovery found.
func (d *Durability) Recovery() engine.RecoveryInfo {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.recovery
}

// Dir returns the data directory.
func (d *Durability) Dir() string { return d.dir }

// Gauges exports the durability state for /metrics: live WAL size, age of
// the last checkpoint, total checkpoints taken, and how long boot-time
// recovery took (plus how many WAL records it replayed).
func (d *Durability) Gauges() map[string]float64 {
	d.mu.Lock()
	age := time.Since(d.lastCheckpoint).Seconds()
	ckpts := float64(d.checkpoints)
	rec := d.recovery
	d.mu.Unlock()
	degraded, poisoned := 0.0, 0.0
	if down, _ := d.db.Degraded(); down {
		// Today the only degradation trigger is WAL poison, so the two
		// gauges move together; they are exported separately because future
		// triggers (replication divergence, read-only standby) will not be
		// poison-driven.
		degraded, poisoned = 1, 1
	}
	return map[string]float64{
		"flock_wal_bytes":               float64(d.db.WALSizeBytes()),
		"flock_checkpoint_age_seconds":  age,
		"flock_checkpoints_total":       ckpts,
		"flock_recovery_seconds":        rec.Duration.Seconds(),
		"flock_recovery_replay_records": float64(rec.Records),
		"flock_degraded_mode":           degraded,
		"flock_wal_poisoned":            poisoned,
	}
}

// SaveSnapshotTo writes a point-in-time snapshot to an arbitrary writer
// (export path; the data directory's own snapshot is managed by
// Checkpoint).
func (d *Durability) SaveSnapshotTo(w io.Writer) error {
	return d.db.SaveSnapshot(w)
}
