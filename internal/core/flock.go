package core

import (
	"context"
	"fmt"
	"io"

	"repro/internal/engine"
	"repro/internal/governance"
	"repro/internal/infer"
	"repro/internal/ml"
	"repro/internal/onnx"
	"repro/internal/opt"
	"repro/internal/policy"
	"repro/internal/provenance"
	"repro/internal/sql"
)

// Flock is the reference architecture facade (Figure 1): a database engine
// with in-DBMS inference, a versioned model registry, RBAC + audit
// governance, a provenance catalog with eager SQL capture, and a policy
// engine bridging predictions to decisions. Every statement that flows
// through Exec is access-checked, captured, and audited.
type Flock struct {
	DB       *engine.DB
	Models   *ModelRegistry
	Access   *governance.AccessController
	Audit    *governance.AuditLog
	Catalog  *provenance.Catalog
	Prov     *provenance.SQLTracker
	Policies *policy.Engine

	// Infer is the production inference plane, set by EnableInferPlane.
	// nil means PREDICT uses the engine's direct scoring paths.
	Infer *infer.Plane
}

// EnableInferPlane builds an inference plane over the model registry and
// routes both engine PREDICT paths through it: micro-batched backend
// calls, generation-keyed score caching, and shadow/canary candidate
// deployments gated by drift and agreement stats. The plane's promote
// hook drives ModelRegistry.Promote to production, so an auto-promoted
// canary bumps the registry generation and thereby invalidates cached
// scores and cached plans alike.
func (f *Flock) EnableInferPlane(cfg infer.Config) *infer.Plane {
	if cfg.Promote == nil {
		cfg.Promote = func(model string, version int) error {
			return f.Models.Promote(model, version, StageProduction)
		}
	}
	p := infer.New(f.Models, cfg)
	f.DB.SetPredictPlane(p)
	f.Infer = p
	return p
}

// DisableInferPlane detaches and stops the plane.
func (f *Flock) DisableInferPlane() {
	if f.Infer == nil {
		return
	}
	f.DB.SetPredictPlane(nil)
	f.Infer.Close()
	f.Infer = nil
}

// New assembles a Flock instance. The built-in "admin" role holds every
// permission; assign it to bootstrap users.
func New() (*Flock, error) {
	return newFromDB(engine.NewDB())
}

// Open restores a Flock from a durable engine snapshot (see
// engine.DB.SaveSnapshot): tables, time-travel history, query log and
// every deployed model version come back; governance and provenance state
// start fresh (the provenance catalog can be rebuilt lazily from the
// restored query log via SQLTracker.CaptureLog). For crash-safe operation
// with a write-ahead log, checkpoints and audit-chain recovery, use
// OpenDir instead.
func Open(r io.Reader) (*Flock, error) {
	db := engine.NewDB()
	if err := db.LoadSnapshot(r); err != nil {
		return nil, err
	}
	return newFromDB(db)
}

func newFromDB(db *engine.DB) (*Flock, error) {
	reg, err := NewModelRegistry(db)
	if err != nil {
		return nil, err
	}
	db.SetModelProvider(reg)
	catalog := provenance.NewCatalog()
	f := &Flock{
		DB:       db,
		Models:   reg,
		Access:   governance.NewAccessController(),
		Audit:    governance.NewAuditLog(),
		Catalog:  catalog,
		Prov:     provenance.NewSQLTracker(catalog),
		Policies: policy.NewEngine(),
	}
	for _, act := range []governance.Action{
		governance.ActSelect, governance.ActInsert, governance.ActUpdate,
		governance.ActDelete, governance.ActScore, governance.ActDeploy,
		governance.ActCreate,
	} {
		f.Access.Grant("admin", act, governance.AllObjects)
	}
	return f, nil
}

// Exec runs a statement on behalf of user at the default optimization
// level, enforcing access control, capturing provenance, and auditing.
func (f *Flock) Exec(user, query string) (*engine.Result, error) {
	return f.ExecLevel(user, query, f.DB.DefaultLevel)
}

// ExecContext is Exec with a cancellation context: once ctx is done,
// execution aborts at the engine's next batch boundary. This is the serving
// layer's entry point — every session query flows through here so a
// disconnecting client, an expired deadline, or a server shutdown unwinds
// the whole statement.
func (f *Flock) ExecContext(ctx context.Context, user, query string) (*engine.Result, error) {
	return f.ExecLevelContext(ctx, user, query, f.DB.DefaultLevel)
}

// ExecLevel is Exec with an explicit optimization level.
func (f *Flock) ExecLevel(user, query string, level opt.Level) (*engine.Result, error) {
	return f.ExecLevelContext(context.Background(), user, query, level)
}

// ExecLevelContext is ExecContext with an explicit optimization level.
func (f *Flock) ExecLevelContext(ctx context.Context, user, query string, level opt.Level) (*engine.Result, error) {
	stmts, err := sql.Parse(query)
	if err != nil {
		f.Audit.Record(user, "parse", "", truncate(query), false)
		return nil, err
	}
	if len(stmts) == 0 {
		f.Audit.Record(user, "parse", "", truncate(query), false)
		return nil, fmt.Errorf("core: empty statement")
	}
	var last *engine.Result
	for _, stmt := range stmts {
		res, err := f.execOne(ctx, user, stmt, level)
		if err != nil {
			return nil, err
		}
		last = res
	}
	return last, nil
}

func (f *Flock) execOne(ctx context.Context, user string, stmt sql.Statement, level opt.Level) (*engine.Result, error) {
	text := sql.FormatStatement(stmt)
	acc := sql.Analyze(stmt)

	// Access control: reads, writes and model scoring are all checked
	// before anything executes.
	if err := f.checkAccess(user, stmt, acc); err != nil {
		f.Audit.Record(user, "denied", firstObject(acc), truncate(text), false)
		return nil, err
	}

	// Eager provenance capture.
	if _, err := f.Prov.CaptureQuery(text, user); err != nil {
		return nil, err
	}

	res, err := f.DB.ExecAsContext(ctx, text, user, engine.ExecOptions{Level: level})
	f.Audit.Record(user, stmtAction(stmt), firstObject(acc), truncate(text), err == nil)
	return res, err
}

func (f *Flock) checkAccess(user string, stmt sql.Statement, acc sql.Access) error {
	for _, m := range acc.Models {
		if err := f.Access.Check(user, governance.ActScore, governance.ModelObject(m)); err != nil {
			return err
		}
	}
	switch stmt.(type) {
	case *sql.SelectStmt:
		for _, t := range acc.ReadTables {
			err := f.Access.Check(user, governance.ActSelect, governance.TableObject(t))
			if err == nil {
				continue
			}
			// Fine-grained fallback: the read is allowed when every column
			// the statement references on this table is individually
			// granted (column-level access control). A table read with no
			// resolvable column references still requires the table grant.
			cols := columnsForTable(acc, t)
			if len(cols) == 0 {
				return err
			}
			for _, c := range cols {
				if cerr := f.Access.Check(user, governance.ActSelect, governance.ColumnObject(t, c)); cerr != nil {
					return err // report the table-level denial
				}
			}
		}
	case *sql.InsertStmt:
		for _, t := range acc.WriteTables {
			if err := f.Access.Check(user, governance.ActInsert, governance.TableObject(t)); err != nil {
				return err
			}
		}
	case *sql.UpdateStmt:
		for _, t := range acc.WriteTables {
			if err := f.Access.Check(user, governance.ActUpdate, governance.TableObject(t)); err != nil {
				return err
			}
		}
	case *sql.DeleteStmt:
		for _, t := range acc.WriteTables {
			if err := f.Access.Check(user, governance.ActDelete, governance.TableObject(t)); err != nil {
				return err
			}
		}
	case *sql.CreateTableStmt:
		for _, t := range acc.WriteTables {
			if err := f.Access.Check(user, governance.ActCreate, governance.TableObject(t)); err != nil {
				return err
			}
		}
	}
	return nil
}

// TrainingInfo documents how a deployed model was produced, feeding the
// provenance catalog (model as derived data: code + data lineage).
type TrainingInfo struct {
	Script      string
	Tables      []string
	Hyperparams map[string]string
	Metrics     map[string]string
}

// DeployPipeline exports a trained pipeline, registers it as a new model
// version, promotes it to production, and records full training provenance.
func (f *Flock) DeployPipeline(user, name string, pipe *ml.Pipeline, info TrainingInfo) (int, error) {
	if err := f.Access.Check(user, governance.ActDeploy, governance.ModelObject(name)); err != nil {
		f.Audit.Record(user, "denied", string(governance.ModelObject(name)), "deploy", false)
		return 0, err
	}
	g, err := onnx.Export(pipe)
	if err != nil {
		return 0, err
	}
	return f.deployGraph(user, name, g, info)
}

// DeployGraph registers an already-exported graph (e.g. one trained in the
// cloud and shipped as a blob — "train in the cloud, score in the DBMS").
func (f *Flock) DeployGraph(user, name string, g *onnx.Graph, info TrainingInfo) (int, error) {
	if err := f.Access.Check(user, governance.ActDeploy, governance.ModelObject(name)); err != nil {
		f.Audit.Record(user, "denied", string(governance.ModelObject(name)), "deploy", false)
		return 0, err
	}
	return f.deployGraph(user, name, g, info)
}

func (f *Flock) deployGraph(user, name string, g *onnx.Graph, info TrainingInfo) (int, error) {
	version, err := f.Models.Create(name, user, g)
	if err != nil {
		f.Audit.Record(user, "deploy", string(governance.ModelObject(name)), "create failed", false)
		return 0, err
	}
	if err := f.Models.Promote(name, version, StageProduction); err != nil {
		return 0, err
	}
	f.Prov.RecordTraining(name, version, info.Script, info.Tables, info.Hyperparams, info.Metrics)
	f.Audit.Record(user, "deploy", string(governance.ModelObject(name)),
		fmt.Sprintf("version %d promoted to production", version), true)
	return version, nil
}

// Decide scores one row through the named model via SQL and routes the
// prediction through the policy engine, returning the governed outcome —
// the full model-to-decision path of §4.1 in one call. The query must
// return a single float column.
func (f *Flock) Decide(user, model, query, entity string, attrs map[string]float64) (policy.Outcome, error) {
	res, err := f.Exec(user, query)
	if err != nil {
		return policy.Outcome{}, err
	}
	if len(res.Rows) != 1 || len(res.Rows[0]) != 1 {
		return policy.Outcome{}, fmt.Errorf("core: Decide query must return exactly one value, got %dx%d",
			len(res.Rows), len(res.Columns))
	}
	score, ok := res.Rows[0][0].(float64)
	if !ok {
		return policy.Outcome{}, fmt.Errorf("core: Decide query must return a float score, got %T", res.Rows[0][0])
	}
	out := f.Policies.Apply(policy.Decision{Model: model, Entity: entity, Score: score, Attrs: attrs})
	f.Audit.Record(user, "decide", string(governance.ModelObject(model)),
		fmt.Sprintf("entity=%s score=%.4f final=%.4f overridden=%t", entity, score, out.Final, out.Overridden), true)
	return out, nil
}

// columnsForTable collects the columns a statement references on one
// table: qualifier-matched columns plus bare references when the table is
// the statement's only read table (so attribution is unambiguous). SELECT *
// yields no resolvable columns, forcing the table-level grant.
func columnsForTable(acc sql.Access, table string) []string {
	var out []string
	out = append(out, acc.Columns[table]...)
	if len(acc.ReadTables) == 1 {
		out = append(out, acc.Columns[""]...)
	}
	return out
}

func stmtAction(s sql.Statement) string {
	switch s.(type) {
	case *sql.SelectStmt:
		return "select"
	case *sql.InsertStmt:
		return "insert"
	case *sql.UpdateStmt:
		return "update"
	case *sql.DeleteStmt:
		return "delete"
	case *sql.CreateTableStmt:
		return "create"
	}
	return "exec"
}

func firstObject(acc sql.Access) string {
	if len(acc.WriteTables) > 0 {
		return string(governance.TableObject(acc.WriteTables[0]))
	}
	if len(acc.ReadTables) > 0 {
		return string(governance.TableObject(acc.ReadTables[0]))
	}
	if len(acc.Models) > 0 {
		return string(governance.ModelObject(acc.Models[0]))
	}
	return ""
}

func truncate(s string) string {
	if len(s) > 200 {
		return s[:200] + "..."
	}
	return s
}
