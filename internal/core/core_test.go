package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/governance"
	"repro/internal/ml"
	"repro/internal/onnx"
	"repro/internal/policy"
	"repro/internal/provenance"
)

// trainPipe fits a small churn pipeline for tests.
func trainPipe(t testing.TB) *ml.Pipeline {
	t.Helper()
	r := ml.NewRand(77)
	n := 300
	ages := make([]float64, n)
	regions := make([]string, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		ages[i] = 20 + r.Float64()*50
		regions[i] = []string{"us", "eu", "apac"}[r.Intn(3)]
		if ages[i] > 45 && regions[i] != "apac" {
			y[i] = 1
		}
	}
	f := ml.NewFrame().AddNumeric("age", ages).AddCategorical("region", regions)
	p := ml.NewPipeline("churn",
		ml.NewFeaturizer().With("age", &ml.StandardScaler{}).With("region", &ml.OneHotEncoder{}),
		&ml.GradientBoosting{NTrees: 15, MaxDepth: 3, Loss: ml.LossLogistic})
	if err := p.Fit(f, y); err != nil {
		t.Fatal(err)
	}
	return p
}

func newFlock(t testing.TB) *Flock {
	t.Helper()
	f, err := New()
	if err != nil {
		t.Fatal(err)
	}
	f.Access.AssignRole("root", "admin")
	return f
}

func TestRegistryCreatePromoteResolve(t *testing.T) {
	f := newFlock(t)
	g, err := onnx.Export(trainPipe(t))
	if err != nil {
		t.Fatal(err)
	}
	v1, err := f.Models.Create("churn", "alice", g)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != 1 {
		t.Fatalf("first version = %d", v1)
	}
	// Staging model is resolvable (no production version yet).
	if _, err := f.Models.GraphFor("churn"); err != nil {
		t.Fatal(err)
	}
	if err := f.Models.Promote("churn", 1, StageProduction); err != nil {
		t.Fatal(err)
	}
	v2, err := f.Models.Create("churn", "alice", g)
	if err != nil {
		t.Fatal(err)
	}
	if v2 != 2 {
		t.Fatalf("second version = %d", v2)
	}
	// Production version still wins over newer staging.
	meta1, _ := f.Models.Meta("churn", 1)
	if meta1.Stage != StageProduction {
		t.Errorf("v1 stage = %s", meta1.Stage)
	}
	// Promote v2: v1 is demoted.
	if err := f.Models.Promote("churn", 2, StageProduction); err != nil {
		t.Fatal(err)
	}
	meta1, _ = f.Models.Meta("churn", 1)
	if meta1.Stage != StageRetired {
		t.Errorf("v1 stage after demotion = %s", meta1.Stage)
	}
	// Pinned version lookup.
	if _, err := f.Models.GraphFor("churn@1"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Models.GraphFor("churn@99"); err == nil {
		t.Error("missing version should error")
	}
	if _, err := f.Models.GraphFor("ghost"); err == nil {
		t.Error("unknown model should error")
	}
	list := f.Models.List()
	if len(list) != 2 || list[0].Version != 1 {
		t.Errorf("list = %v", list)
	}
}

func TestRegistryRejectsInvalidGraph(t *testing.T) {
	f := newFlock(t)
	g, _ := onnx.Export(trainPipe(t))
	bad := g.Clone()
	bad.Model.Coeff = nil
	bad.Model.Op = onnx.OpLinear
	if _, err := f.Models.Create("bad", "x", bad); err == nil {
		t.Error("invalid graph should be rejected")
	}
}

func TestRegistryPersistenceRoundTrip(t *testing.T) {
	f := newFlock(t)
	g, _ := onnx.Export(trainPipe(t))
	if _, err := f.Models.Create("churn", "alice", g); err != nil {
		t.Fatal(err)
	}
	if err := f.Models.Promote("churn", 1, StageProduction); err != nil {
		t.Fatal(err)
	}
	// Blow away the in-memory cache and reload from the system table.
	if err := f.Models.LoadPersisted(); err != nil {
		t.Fatal(err)
	}
	g2, err := f.Models.GraphFor("churn")
	if err != nil {
		t.Fatal(err)
	}
	if g2.Width() != g.Width() || len(g2.Model.Trees) != len(g.Model.Trees) {
		t.Error("persisted graph differs")
	}
	meta, err := f.Models.Meta("churn", 1)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Stage != StageProduction || meta.Creator != "alice" {
		t.Errorf("persisted meta = %+v", meta)
	}
}

func TestDeployAllAtomic(t *testing.T) {
	f := newFlock(t)
	g, _ := onnx.Export(trainPipe(t))
	bad := g.Clone()
	bad.Feats[0].Input = "ghost" // invalid

	err := f.Models.DeployAll([]Deployment{
		{Name: "a", Graph: g, Creator: "x"},
		{Name: "b", Graph: bad, Creator: "x"},
	})
	if err == nil {
		t.Fatal("deploy with invalid member should fail")
	}
	if _, err := f.Models.GraphFor("a"); err == nil {
		t.Error("nothing should have deployed (atomicity violated)")
	}

	// All-valid deployment succeeds and lands in production.
	if err := f.Models.DeployAll([]Deployment{
		{Name: "a", Graph: g, Creator: "x"},
		{Name: "b", Graph: g.Clone(), Creator: "x"},
	}); err != nil {
		t.Fatal(err)
	}
	ma, _ := f.Models.Meta("a", 1)
	mb, _ := f.Models.Meta("b", 1)
	if ma.Stage != StageProduction || mb.Stage != StageProduction {
		t.Error("deployed models should be in production")
	}
}

func TestFlockEndToEnd(t *testing.T) {
	f := newFlock(t)
	// Load data via governed SQL.
	if _, err := f.Exec("root", "CREATE TABLE customers (id int, age float, region text)"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Exec("root", `INSERT INTO customers VALUES
		(1, 50.0, 'us'), (2, 30.0, 'eu'), (3, 60.0, 'eu'), (4, 55.0, 'apac')`); err != nil {
		t.Fatal(err)
	}
	// Deploy the trained pipeline.
	v, err := f.DeployPipeline("root", "churn", trainPipe(t), TrainingInfo{
		Script: "train.py", Tables: []string{"customers"},
		Hyperparams: map[string]string{"n_trees": "15"},
		Metrics:     map[string]string{"auc": "0.9"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Fatalf("version = %d", v)
	}
	// In-DB scoring.
	res, err := f.Exec("root", "SELECT id, PREDICT(churn, age, region) AS score FROM customers ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %v", res.Rows)
	}
	for _, row := range res.Rows {
		s := row[1].(float64)
		if s < 0 || s > 1 {
			t.Errorf("score %v out of range", s)
		}
	}
	// Audit trail recorded everything and is intact.
	if f.Audit.Len() < 4 {
		t.Errorf("audit entries = %d", f.Audit.Len())
	}
	if bad := f.Audit.Verify(); bad != -1 {
		t.Errorf("audit chain broken at %d", bad)
	}
	// Provenance: the scoring query is connected to the training table.
	queries := f.Catalog.EntitiesOfType(provenance.TypeQuery)
	var scoring *provenance.Entity
	for _, q := range queries {
		if strings.Contains(q.Attrs["text"], "PREDICT") {
			scoring = q
		}
	}
	if scoring == nil {
		t.Fatal("scoring query not captured")
	}
	foundTraining := false
	for _, e := range f.Catalog.Lineage(scoring.ID, provenance.Downstream, 0) {
		if e.Type == provenance.TypeTable && e.Name == "customers" {
			foundTraining = true
		}
	}
	if !foundTraining {
		t.Error("lineage from scoring query to training table broken")
	}
}

func TestFlockAccessControl(t *testing.T) {
	f := newFlock(t)
	if _, err := f.Exec("root", "CREATE TABLE secrets (id int)"); err != nil {
		t.Fatal(err)
	}
	// Unprivileged user is denied and the denial is audited.
	if _, err := f.Exec("mallory", "SELECT id FROM secrets"); err == nil {
		t.Fatal("expected denial")
	}
	entries := f.Audit.Entries()
	last := entries[len(entries)-1]
	if last.User != "mallory" || last.Allowed {
		t.Errorf("denial not audited: %+v", last)
	}
	// Grant read-only access via a role.
	f.Access.Grant("analyst", governance.ActSelect, governance.TableObject("secrets"))
	f.Access.AssignRole("mallory", "analyst")
	if _, err := f.Exec("mallory", "SELECT id FROM secrets"); err != nil {
		t.Fatalf("granted select denied: %v", err)
	}
	if _, err := f.Exec("mallory", "INSERT INTO secrets VALUES (1)"); err == nil {
		t.Error("insert should still be denied")
	}
	// Model scoring requires a model grant.
	if _, err := f.DeployPipeline("root", "churn", trainPipe(t), TrainingInfo{}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Exec("root", "CREATE TABLE customers (id int, age float, region text)"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Exec("root", "INSERT INTO customers VALUES (1, 40.0, 'us')"); err != nil {
		t.Fatal(err)
	}
	f.Access.Grant("analyst", governance.ActSelect, governance.TableObject("customers"))
	if _, err := f.Exec("mallory", "SELECT PREDICT(churn, age, region) FROM customers"); err == nil {
		t.Error("scoring without a model grant should be denied")
	}
	f.Access.Grant("analyst", governance.ActScore, governance.ModelObject("churn"))
	if _, err := f.Exec("mallory", "SELECT PREDICT(churn, age, region) FROM customers"); err != nil {
		t.Errorf("granted scoring denied: %v", err)
	}
}

func TestFlockDeployRequiresPermission(t *testing.T) {
	f := newFlock(t)
	if _, err := f.DeployPipeline("intern", "churn", trainPipe(t), TrainingInfo{}); err == nil {
		t.Error("deploy without grant should be denied")
	}
	if _, err := f.Models.GraphFor("churn"); err == nil {
		t.Error("denied deploy must not register the model")
	}
}

func TestFlockDecideWithPolicy(t *testing.T) {
	f := newFlock(t)
	if _, err := f.Exec("root", "CREATE TABLE jobs (id int, age float, region text)"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Exec("root", "INSERT INTO jobs VALUES (1, 60.0, 'us')"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.DeployPipeline("root", "churn", trainPipe(t), TrainingInfo{}); err != nil {
		t.Fatal(err)
	}
	if err := f.Policies.AddRule(policy.Rule{
		Name: "cap", Model: "churn", CapMax: policy.F(0.5), Reason: "risk cap",
	}); err != nil {
		t.Fatal(err)
	}
	out, err := f.Decide("root", "churn",
		"SELECT PREDICT(churn, age, region) AS s FROM jobs WHERE id = 1", "job-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Final > 0.5 {
		t.Errorf("cap not applied: %+v", out)
	}
	if out.Decision.Score > 0.5 && !out.Overridden {
		t.Errorf("override not flagged: %+v", out)
	}
	// The decision is audited.
	found := false
	for _, e := range f.Audit.Entries() {
		if e.Action == "decide" {
			found = true
		}
	}
	if !found {
		t.Error("decision not audited")
	}
}

func TestFlockLazyCaptureFromQueryLog(t *testing.T) {
	f := newFlock(t)
	if _, err := f.Exec("root", "CREATE TABLE t (a int)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := f.Exec("root", "INSERT INTO t VALUES (1)"); err != nil {
			t.Fatal(err)
		}
	}
	// Lazy capture into a FRESH catalog from the engine's query log.
	lazy := provenance.NewCatalog()
	tracker := provenance.NewSQLTracker(lazy)
	captured, skipped := tracker.CaptureLog(f.DB.QueryLog())
	if captured < 6 || skipped != 0 {
		t.Errorf("captured=%d skipped=%d", captured, skipped)
	}
	if len(lazy.Versions(provenance.TypeTable, "t")) < 6 {
		t.Error("lazy capture missed write versions")
	}
}

func TestFlockRestartFromSnapshot(t *testing.T) {
	// Build a full instance: data + deployed model + queries.
	f1 := newFlock(t)
	if _, err := f1.Exec("root", "CREATE TABLE customers (id int, age float, region text)"); err != nil {
		t.Fatal(err)
	}
	if _, err := f1.Exec("root", "INSERT INTO customers VALUES (1, 50.0, 'us'), (2, 30.0, 'eu')"); err != nil {
		t.Fatal(err)
	}
	if _, err := f1.DeployPipeline("root", "churn", trainPipe(t), TrainingInfo{}); err != nil {
		t.Fatal(err)
	}
	want, err := f1.Exec("root", "SELECT id, PREDICT(churn, age, region) AS s FROM customers ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f1.DB.SaveSnapshot(&buf); err != nil {
		t.Fatal(err)
	}

	// "Restart": restore into a fresh Flock; models recover from the
	// system table, and scoring produces identical results.
	f2, err := Open(&buf)
	if err != nil {
		t.Fatal(err)
	}
	f2.Access.AssignRole("root", "admin")
	meta, err := f2.Models.Meta("churn", 1)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Stage != StageProduction {
		t.Errorf("recovered stage = %s", meta.Stage)
	}
	got, err := f2.Exec("root", "SELECT id, PREDICT(churn, age, region) AS s FROM customers ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Rows {
		if got.Rows[i][1] != want.Rows[i][1] {
			t.Fatalf("restored score differs at row %d: %v vs %v", i, got.Rows[i][1], want.Rows[i][1])
		}
	}
	// The restored query log supports lazy provenance reconstruction.
	lazy := provenance.NewCatalog()
	captured, _ := provenance.NewSQLTracker(lazy).CaptureLog(f2.DB.QueryLog())
	if captured < 3 {
		t.Errorf("lazy rebuild captured %d queries", captured)
	}
	// And new deployments continue the version sequence.
	v, err := f2.DeployPipeline("root", "churn", trainPipe(t), TrainingInfo{})
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Errorf("post-restore version = %d, want 2", v)
	}
}

func TestColumnLevelAccess(t *testing.T) {
	f := newFlock(t)
	if _, err := f.Exec("root", "CREATE TABLE patients (id int, age float, diagnosis text)"); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Exec("root", "INSERT INTO patients VALUES (1, 50.0, 'sensitive')"); err != nil {
		t.Fatal(err)
	}
	// Grant only non-sensitive columns to the researcher role.
	f.Access.Grant("researcher", governance.ActSelect, governance.ColumnObject("patients", "id"))
	f.Access.Grant("researcher", governance.ActSelect, governance.ColumnObject("patients", "age"))
	f.Access.AssignRole("rae", "researcher")

	if _, err := f.Exec("rae", "SELECT id, age FROM patients"); err != nil {
		t.Fatalf("granted columns denied: %v", err)
	}
	if _, err := f.Exec("rae", "SELECT diagnosis FROM patients"); err == nil {
		t.Error("ungranted column should be denied")
	}
	if _, err := f.Exec("rae", "SELECT id, diagnosis FROM patients"); err == nil {
		t.Error("mixed selection including an ungranted column should be denied")
	}
	// SELECT * cannot be resolved to columns: requires the table grant.
	if _, err := f.Exec("rae", "SELECT * FROM patients"); err == nil {
		t.Error("SELECT * without table grant should be denied")
	}
	// Filtering on an ungranted column also counts as reading it.
	if _, err := f.Exec("rae", "SELECT id FROM patients WHERE diagnosis = 'sensitive'"); err == nil {
		t.Error("filtering on an ungranted column should be denied")
	}
	// A full table grant still works and subsumes columns.
	f.Access.Grant("researcher", governance.ActSelect, governance.TableObject("patients"))
	if _, err := f.Exec("rae", "SELECT * FROM patients"); err != nil {
		t.Errorf("table grant should allow star select: %v", err)
	}
}
