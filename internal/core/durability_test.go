package core

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/engine"
	"repro/internal/governance"
)

// openDurable opens a durable Flock in dir with per-commit fsync disabled
// (tests exercise ordering and recovery, not disk latency).
func openDurable(t *testing.T, dir string) (*Flock, *Durability) {
	t.Helper()
	f, d, err := OpenDir(dir, DurabilityOptions{WALSync: false})
	if err != nil {
		t.Fatal(err)
	}
	f.Access.AssignRole("root", "admin")
	return f, d
}

// TestOpenDirFullLifecycle drives the whole durability loop: data + model
// + audit accumulate, a clean Close folds the WAL, and a reopen recovers
// tables, time-travel history, the model registry, the query log and the
// audit chain.
func TestOpenDirFullLifecycle(t *testing.T) {
	dir := t.TempDir()
	f1, d1 := openDurable(t, dir)
	if _, err := f1.Exec("root", "CREATE TABLE customers (id int, age float, region text)"); err != nil {
		t.Fatal(err)
	}
	if _, err := f1.Exec("root", "INSERT INTO customers VALUES (1, 50.0, 'us'), (2, 30.0, 'eu')"); err != nil {
		t.Fatal(err)
	}
	if _, err := f1.DeployPipeline("root", "churn", trainPipe(t), TrainingInfo{}); err != nil {
		t.Fatal(err)
	}
	if _, err := f1.Exec("root", "UPDATE customers SET age = age + 1 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	want, err := f1.Exec("root", "SELECT id, PREDICT(churn, age, region) AS s FROM customers ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	tab, _ := f1.DB.Table("customers")
	wantVersion := tab.Version()
	wantAudit := f1.Audit.Len()
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}
	// A clean shutdown checkpoints: recovery should come from the snapshot.
	f2, d2, err := OpenDir(dir, DurabilityOptions{WALSync: false})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	rec := d2.Recovery()
	if !rec.SnapshotLoaded {
		t.Errorf("recovery after clean shutdown did not load a snapshot: %+v", rec)
	}
	f2.Access.AssignRole("root", "admin")

	// Model registry recovered from the system table, still in production.
	meta, err := f2.Models.Meta("churn", 1)
	if err != nil {
		t.Fatal(err)
	}
	if meta.Stage != StageProduction {
		t.Errorf("recovered stage = %s", meta.Stage)
	}
	got, err := f2.Exec("root", "SELECT id, PREDICT(churn, age, region) AS s FROM customers ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Rows {
		if got.Rows[i][1] != want.Rows[i][1] {
			t.Fatalf("restored score differs at row %d: %v vs %v", i, got.Rows[i][1], want.Rows[i][1])
		}
	}

	// Version counter and time travel survive the restart (format v2).
	tab2, err := f2.DB.Table("customers")
	if err != nil {
		t.Fatal(err)
	}
	if tab2.Version() != wantVersion {
		t.Errorf("version = %d, want %d", tab2.Version(), wantVersion)
	}
	res, err := f2.Exec("root", fmt.Sprintf("SELECT age FROM customers VERSION %d WHERE id = 1", wantVersion-1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != 50.0 {
		t.Errorf("pre-update age via time travel = %v, want 50", res.Rows[0][0])
	}

	// Audit chain restored intact and still appending.
	if f2.Audit.Len() < wantAudit {
		t.Errorf("audit entries = %d, want >= %d", f2.Audit.Len(), wantAudit)
	}
	if idx := f2.Audit.Verify(); idx != -1 {
		t.Errorf("restored audit chain broken at %d", idx)
	}

	// Gauges export the durability state.
	g := d2.Gauges()
	for _, k := range []string{"flock_wal_bytes", "flock_checkpoint_age_seconds", "flock_recovery_seconds"} {
		if _, ok := g[k]; !ok {
			t.Errorf("gauge %s missing", k)
		}
	}
}

// TestOpenDirCrashRecovery simulates a crash: no Close, no checkpoint —
// the reopened instance must still hold every acknowledged write and the
// audit/log state, replayed from the WAL.
func TestOpenDirCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	f1, _ := openDurable(t, dir)
	if _, err := f1.Exec("root", "CREATE TABLE kv (id int, v int)"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := f1.Exec("root", fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", i, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := f1.Exec("root", "DELETE FROM kv WHERE id = 2"); err != nil {
		t.Fatal(err)
	}
	// Crash: abandon f1 without Close. (The OS file writes are complete;
	// only the process state is lost.)

	f2, d2, err := OpenDir(dir, DurabilityOptions{WALSync: false})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	rec := d2.Recovery()
	if rec.Records == 0 {
		t.Fatalf("crash recovery replayed nothing: %+v", rec)
	}
	f2.Access.AssignRole("root", "admin")
	res, err := f2.Exec("root", "SELECT count(*) FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 4 {
		t.Fatalf("rows = %v, want 4", res.Rows[0][0])
	}
	// Reopening again (after the consolidating recovery checkpoint) is
	// idempotent: same state, this time from the snapshot.
	if err := d2.Close(); err != nil {
		t.Fatal(err)
	}
	f3, d3, err := OpenDir(dir, DurabilityOptions{WALSync: false})
	if err != nil {
		t.Fatal(err)
	}
	defer d3.Close()
	f3.Access.AssignRole("root", "admin")
	res, err = f3.Exec("root", "SELECT count(*) FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 4 {
		t.Fatalf("rows after second recovery = %v, want 4", res.Rows[0][0])
	}
}

// TestOpenDirRejectsTamperedAudit: recovery must refuse an audit file whose
// chain does not verify — restoring a tampered log would defeat the
// tamper-evidence the hash chain exists for.
func TestOpenDirRejectsTamperedAudit(t *testing.T) {
	dir := t.TempDir()
	f1, d1 := openDurable(t, dir)
	f1.Audit.Record("root", "login", "", "ok", true)
	if err := d1.Close(); err != nil {
		t.Fatal(err)
	}

	// Rewrite the audit file with a forged entry: valid frame, broken chain.
	forged := governance.AuditEntry{Seq: 99, User: "mallory", Action: "deploy", Hash: "bogus"}
	var frame bytes.Buffer
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(forged); err != nil {
		t.Fatal(err)
	}
	if err := engine.AppendFrame(&frame, payload.Bytes()); err != nil {
		t.Fatal(err)
	}
	af, err := os.OpenFile(filepath.Join(dir, auditFile), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := af.Write(frame.Bytes()); err != nil {
		t.Fatal(err)
	}
	af.Close()

	if _, _, err := OpenDir(dir, DurabilityOptions{}); err == nil {
		t.Fatal("OpenDir accepted a tampered audit chain")
	}
}

// TestDurabilityCheckpointUnderLoad folds the WAL while writes are in
// flight (run with -race): every acknowledged statement must land in
// either the snapshot or the post-rotation log, so the final recovered
// count matches what was committed.
func TestDurabilityCheckpointUnderLoad(t *testing.T) {
	dir := t.TempDir()
	f1, d1 := openDurable(t, dir)
	if _, err := f1.Exec("root", "CREATE TABLE kv (id int)"); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		for i := 0; i < 200; i++ {
			if _, err := f1.Exec("root", fmt.Sprintf("INSERT INTO kv VALUES (%d)", i)); err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()
	for i := 0; i < 10; i++ {
		if err := d1.Checkpoint(); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Crash-reopen (no Close): all 200 acknowledged inserts, exactly once.
	f2, d2, err := OpenDir(dir, DurabilityOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	f2.Access.AssignRole("root", "admin")
	res, err := f2.Exec("root", "SELECT count(*) FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 200 {
		t.Fatalf("rows = %v, want 200 (lost or duplicated commits across checkpoints)", res.Rows[0][0])
	}
	res, err = f2.Exec("root", "SELECT DISTINCT id FROM kv")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 200 {
		t.Fatalf("distinct ids = %d, want 200 (WAL replay duplicated rows)", len(res.Rows))
	}
}
