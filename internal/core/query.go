package core

// Pull-based query entry points. Exec* materializes whole results; Query*
// returns an engine.Cursor that produces batches on demand, so a caller
// (the serving layer's NDJSON drains and server-side cursors) holds
// O(batch) memory per result. The full governance path — access check,
// eager provenance capture, query log, audit — runs at open, BEFORE the
// first batch is released: a cursor in hand means the statement was
// authorized and recorded, and no batch ever flows to an unauthorized
// user.

import (
	"context"
	"fmt"

	"repro/internal/engine"
	"repro/internal/opt"
	"repro/internal/sql"
)

// Query opens a cursor over a single SELECT on behalf of user at the
// default optimization level. The caller owns the cursor and must Close it
// (Collect-style drains included); the context passed to each Next bounds
// that pull only.
func (f *Flock) Query(ctx context.Context, user, query string) (engine.Cursor, error) {
	return f.QueryLevel(ctx, user, query, f.DB.DefaultLevel)
}

// QueryLevel is Query with an explicit optimization level. Only a single
// SELECT statement can be cursored; DML and multi-statement strings must
// go through Exec*.
func (f *Flock) QueryLevel(ctx context.Context, user, query string, level opt.Level) (engine.Cursor, error) {
	stmt, err := sql.ParseOne(query)
	if err != nil {
		f.Audit.Record(user, "parse", "", truncate(query), false)
		return nil, err
	}
	sel, ok := stmt.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("core: Query requires a single SELECT statement; use Exec for %T", stmt)
	}
	text := sql.FormatStatement(sel)
	acc := sql.Analyze(sel)

	// Governance gate: nothing is planned, scanned, or released until the
	// read is authorized and captured.
	if err := f.checkAccess(user, sel, acc); err != nil {
		f.Audit.Record(user, "denied", firstObject(acc), truncate(text), false)
		return nil, err
	}
	if _, err := f.Prov.CaptureQuery(text, user); err != nil {
		return nil, err
	}
	f.DB.LogStatement(text, user)

	cur, _, err := f.DB.OpenCursor(ctx, sel, engine.ExecOptions{Level: level})
	f.Audit.Record(user, "select", firstObject(acc), truncate(text), err == nil)
	return cur, err
}

// QueryPrepared opens a cursor over a prepared SELECT with the same
// governance path as ExecPrepared: per-execution access check (cache-shared
// plans are re-checked for this user), provenance capture, query log, and
// audit all happen before the plan is opened.
func (f *Flock) QueryPrepared(ctx context.Context, user string, p *Prepared) (engine.Cursor, error) {
	sel, ok := p.stmt.(*sql.SelectStmt)
	if !ok {
		return nil, fmt.Errorf("core: QueryPrepared requires a prepared SELECT, have %s", p.Kind())
	}
	if err := f.checkAccess(user, p.stmt, p.acc); err != nil {
		f.Audit.Record(user, "denied", firstObject(p.acc), truncate(p.text), false)
		return nil, err
	}
	f.Prov.CaptureStmt(p.stmt, p.text, user)
	f.DB.LogStatement(p.text, user)

	plan, err := p.freshPlan(f, sel)
	var cur engine.Cursor
	if err == nil {
		cur, err = f.DB.OpenPlanCursor(ctx, plan, engine.ExecOptions{Level: p.Level})
	}
	f.Audit.Record(user, "select", firstObject(p.acc), truncate(p.text), err == nil)
	return cur, err
}
