package core

// Cursor-path governance pinning: Query* performs the access check, audit,
// provenance capture and query-log append BEFORE the first batch is
// released, denied users get no cursor at all, and non-SELECT statements
// are rejected.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/engine"
	"repro/internal/governance"
)

func queryTestFlock(t *testing.T) *Flock {
	t.Helper()
	f, err := New()
	if err != nil {
		t.Fatal(err)
	}
	f.Access.AssignRole("root", "admin")
	mustExecQ(t, f, `CREATE TABLE readings (id int, v float)`)
	var b strings.Builder
	b.WriteString(`INSERT INTO readings VALUES `)
	for i := 0; i < 500; i++ {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "(%d, %d.5)", i, i%50)
	}
	mustExecQ(t, f, b.String())
	return f
}

func mustExecQ(t *testing.T, f *Flock, q string) {
	t.Helper()
	if _, err := f.Exec("root", q); err != nil {
		t.Fatalf("%s: %v", q, err)
	}
}

func TestQueryCursorDrain(t *testing.T) {
	f := queryTestFlock(t)
	cur, err := f.Query(context.Background(), "root", `SELECT id, v FROM readings WHERE v > 10.0`)
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if names := cur.Schema().Names(); len(names) != 2 || names[0] != "id" {
		t.Fatalf("schema: %v", names)
	}
	n := 0
	for {
		b, err := cur.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n += b.N
	}
	if n != 400 { // v in {10.5 .. 49.5}: 40 of 50 values, 10 reps each
		t.Fatalf("drained %d rows, want 400", n)
	}
}

// TestQueryGovernanceBeforeFirstBatch pins the ordering contract: a denied
// user gets an error (and an audit record) with no cursor, and a granted
// user's query is audited and captured at open — before any batch is
// pulled.
func TestQueryGovernanceBeforeFirstBatch(t *testing.T) {
	f := queryTestFlock(t)

	if _, err := f.Query(context.Background(), "mallory", `SELECT id FROM readings`); err == nil {
		t.Fatal("denied user got a cursor")
	}
	entries := f.Audit.Entries()
	last := entries[len(entries)-1]
	if last.User != "mallory" || last.Action != "denied" {
		t.Fatalf("expected a denial audit record, got %+v", last)
	}

	logBefore := len(f.DB.QueryLog())
	auditBefore := f.Audit.Len()
	cur, err := f.Query(context.Background(), "root", `SELECT id FROM readings`)
	if err != nil {
		t.Fatal(err)
	}
	// No batch pulled yet: the statement must already be logged and audited.
	if got := len(f.DB.QueryLog()); got != logBefore+1 {
		t.Fatalf("query log grew %d entries at open, want 1", got-logBefore)
	}
	if got := f.Audit.Len(); got != auditBefore+1 {
		t.Fatalf("audit grew %d entries at open, want 1", got-auditBefore)
	}
	cur.Close()
}

func TestQueryRejectsNonSelect(t *testing.T) {
	f := queryTestFlock(t)
	if _, err := f.Query(context.Background(), "root", `INSERT INTO readings VALUES (999, 1.0)`); err == nil {
		t.Fatal("Query accepted DML")
	}
	if _, err := f.Query(context.Background(), "root", `SELECT 1; SELECT 2`); err == nil {
		t.Fatal("Query accepted a multi-statement string")
	}
}

func TestQueryPreparedCursor(t *testing.T) {
	f := queryTestFlock(t)
	p, err := f.PrepareAs("root", `SELECT id FROM readings WHERE v > 40.0`, f.DB.DefaultLevel)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := f.QueryPrepared(context.Background(), "root", p)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		b, err := cur.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n += b.N
	}
	cur.Close()
	if n != 100 { // v in {40.5 .. 49.5}: 10 of 50 values, 10 reps each
		t.Fatalf("drained %d rows, want 100", n)
	}

	// A different, unauthorized user is re-checked against the shared plan.
	_, err = f.QueryPrepared(context.Background(), "intruder", p)
	var perm *governance.PermissionError
	if !errors.As(err, &perm) {
		t.Fatalf("unauthorized user on a shared prepared plan: got %v, want a permission error", err)
	}

	// DML cannot be cursored even when prepared.
	pd, err := f.PrepareAs("root", `INSERT INTO readings VALUES (1000, 2.0)`, f.DB.DefaultLevel)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.QueryPrepared(context.Background(), "root", pd); err == nil {
		t.Fatal("QueryPrepared accepted DML")
	}
	if open := engine.CursorsOpen(); open != 0 {
		t.Fatalf("%d cursors leaked", open)
	}
}
