package core

import (
	"bufio"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// SIGKILL crash-recovery test (the PR's acceptance criterion): a child
// process runs a mixed INSERT/UPDATE/DELETE workload against a durable
// directory with per-commit fsync, acknowledging each committed statement
// on stdout; the parent SIGKILLs it mid-workload and then recovers the
// directory in-process. Every acknowledged statement must be present
// exactly once, and since the workload is deterministic the recovered
// state must equal the state after N statements for some N >= last ack
// (at most one in-flight statement can have committed unacknowledged).

const crashDirEnv = "FLOCK_CRASH_DIR"

// crashOp applies statement n of the deterministic workload to a model of
// the kv table (id -> v), mirroring exactly what crashChild executes.
func crashOp(n int, kv map[int]int) string {
	switch n % 3 {
	case 0:
		kv[n] = n
		return fmt.Sprintf("INSERT INTO kv VALUES (%d, %d)", n, n)
	case 1:
		for id := range kv {
			kv[id]++
		}
		return "UPDATE kv SET v = v + 1 WHERE id >= 0"
	default:
		delete(kv, n-8) // ops ≡ 2 mod 3 delete the insert from op n-8 (≡ 0 mod 3)
		return fmt.Sprintf("DELETE FROM kv WHERE id = %d", n-8)
	}
}

// TestCrashWorkloadChild is the re-exec helper: under the parent's env var
// it opens the durable directory and applies the workload until killed. It
// is skipped in a normal test run.
func TestCrashWorkloadChild(t *testing.T) {
	dir := os.Getenv(crashDirEnv)
	if dir == "" {
		t.Skip("crash-test child helper (driven by TestCrashRecoverySIGKILL)")
	}
	f, _, err := OpenDir(dir, DurabilityOptions{WALSync: true})
	if err != nil {
		fmt.Printf("childerr %v\n", err)
		return
	}
	f.Access.AssignRole("root", "admin")
	if _, err := f.Exec("root", "CREATE TABLE kv (id int, v int)"); err != nil {
		fmt.Printf("childerr %v\n", err)
		return
	}
	fmt.Println("ready")
	model := map[int]int{}
	for n := 0; n < 100000; n++ {
		stmt := crashOp(n, model)
		if _, err := f.Exec("root", stmt); err != nil {
			fmt.Printf("childerr op %d: %v\n", n, err)
			return
		}
		// The statement's WAL record is fsynced: acknowledge it. The parent
		// kills us at an arbitrary point in this loop.
		fmt.Printf("ack %d\n", n)
	}
}

func TestCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a child process and fsyncs per statement")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashWorkloadChild$", "-test.v")
	cmd.Env = append(os.Environ(), crashDirEnv+"="+dir)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Read acknowledgements until enough statements have committed, then
	// SIGKILL mid-workload; keep draining so no ack written before the kill
	// is lost in the pipe.
	const killAfter = 40
	acks := make(chan int, 1024)
	scanErr := make(chan error, 1)
	go func() {
		defer close(acks)
		sc := bufio.NewScanner(stdout)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if rest, ok := strings.CutPrefix(line, "ack "); ok {
				n, err := strconv.Atoi(rest)
				if err != nil {
					scanErr <- fmt.Errorf("bad ack line %q", line)
					return
				}
				acks <- n
			} else if strings.HasPrefix(line, "childerr") {
				scanErr <- fmt.Errorf("child failed: %s", line)
				return
			}
		}
		scanErr <- sc.Err()
	}()

	lastAck := -1
	killed := false
	timeout := time.After(2 * time.Minute)
	for !killed {
		select {
		case n, ok := <-acks:
			if !ok {
				t.Fatal("child exited before enough statements committed")
			}
			if n != lastAck+1 {
				t.Fatalf("ack %d after %d (out of order)", n, lastAck)
			}
			lastAck = n
			if lastAck >= killAfter {
				if err := cmd.Process.Kill(); err != nil { // SIGKILL
					t.Fatal(err)
				}
				killed = true
			}
		case err := <-scanErr:
			t.Fatalf("child stream ended early (last ack %d): %v", lastAck, err)
		case <-timeout:
			_ = cmd.Process.Kill()
			t.Fatalf("child made no progress (last ack %d)", lastAck)
		}
	}
	// Drain the pipe: acks already written when the kill landed still count.
	for n := range acks {
		if n != lastAck+1 {
			t.Fatalf("ack %d after %d (out of order)", n, lastAck)
		}
		lastAck = n
	}
	_ = cmd.Wait() // reap; exit status is the kill signal

	// Recover the directory in-process and compare against the model. The
	// child was killed after acknowledging lastAck; at most one further
	// statement may have committed without being acknowledged.
	f, d, err := OpenDir(dir, DurabilityOptions{WALSync: true})
	if err != nil {
		t.Fatalf("recovery after SIGKILL: %v", err)
	}
	defer d.Close()
	f.Access.AssignRole("root", "admin")
	res, err := f.Exec("root", "SELECT id, v FROM kv ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	got := map[int]int{}
	for _, row := range res.Rows {
		id := int(row[0].(int64))
		if _, dup := got[id]; dup {
			t.Fatalf("duplicate id %d after recovery (WAL replay not idempotent)", id)
		}
		got[id] = int(row[1].(int64))
	}

	matches := func(n int) bool {
		model := map[int]int{}
		for i := 0; i <= n; i++ {
			crashOp(i, model)
		}
		if len(model) != len(got) {
			return false
		}
		for id, v := range model {
			if got[id] != v {
				return false
			}
		}
		return true
	}
	if !matches(lastAck) && !matches(lastAck+1) {
		t.Fatalf("recovered state matches neither op %d nor op %d (last ack %d, %d rows)",
			lastAck, lastAck+1, lastAck, len(got))
	}

	// Retained time-travel versions are queryable after the crash.
	tab, err := f.DB.Table("kv")
	if err != nil {
		t.Fatal(err)
	}
	versions := tab.RetainedVersions()
	if len(versions) == 0 {
		t.Fatal("no retained versions after recovery")
	}
	wantSorted := append([]int64(nil), versions...)
	sort.Slice(wantSorted, func(i, j int) bool { return wantSorted[i] < wantSorted[j] })
	for _, v := range []int64{wantSorted[0], wantSorted[len(wantSorted)-1]} {
		if _, err := f.Exec("root", fmt.Sprintf("SELECT count(*) FROM kv VERSION %d", v)); err != nil {
			t.Fatalf("time travel to version %d after crash: %v", v, err)
		}
	}
}
