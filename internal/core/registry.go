// Package core is Flock's heart: it treats ML models as first-class data
// types in the DBMS (§4.1). The ModelRegistry stores serialized model
// graphs in a system table with versions and lifecycle stages, supports
// transactional multi-model deployment, and serves deployed graphs to the
// query engine's PREDICT operator. The Flock facade (flock.go) wires the
// registry, governance, provenance and policy modules into every statement.
package core

import (
	"encoding/base64"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/engine"
	"repro/internal/onnx"
)

// Stage is a model lifecycle stage.
type Stage string

// Lifecycle stages.
const (
	StageStaging    Stage = "staging"
	StageProduction Stage = "production"
	StageRetired    Stage = "retired"
)

// modelsTable is the system table backing the registry — models are stored
// *in the database*, alongside the data they are derived from.
const modelsTable = "flock_models"

// ModelMeta describes one stored model version.
type ModelMeta struct {
	Name      string
	Version   int
	Stage     Stage
	Creator   string
	CreatedAt time.Time
	Inputs    []string
	NumNodes  int
	BlobSize  int
}

// ModelRegistry stores and serves versioned models.
type ModelRegistry struct {
	mu     sync.RWMutex
	db     *engine.DB
	graphs map[string]*onnx.Graph // "name@version" -> decoded graph
	metas  map[string][]ModelMeta // name -> versions ascending
	gen    int64                  // bumped whenever GraphFor resolution can change
}

// Generation returns a counter that advances whenever model resolution can
// change (create, promote, transactional deploy, recovery). Plan caches key
// their validity on it: a cached plan embeds a possibly-rewritten model
// graph, so any registry change must force a replan.
func (r *ModelRegistry) Generation() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.gen
}

// NewModelRegistry creates the registry and its backing system table. When
// the system table already exists (a database restored from a snapshot),
// the registry recovers its state from the persisted rows instead —
// restart-proof model management.
func NewModelRegistry(db *engine.DB) (*ModelRegistry, error) {
	r := &ModelRegistry{db: db, graphs: map[string]*onnx.Graph{}, metas: map[string][]ModelMeta{}}
	if _, err := db.Table(modelsTable); err == nil {
		if err := r.LoadPersisted(); err != nil {
			return nil, fmt.Errorf("core: recovering model registry: %w", err)
		}
		return r, nil
	}
	if db.IsReplica() {
		// A replica must not create the system table itself: its WAL holds
		// exactly the leader's frame sequence, and the leader's own create
		// will arrive as a shipped frame. Start empty; the replication
		// OnApplied hook refreshes the registry once rows exist.
		return r, nil
	}
	_, err := db.CreateTable(modelsTable, engine.Schema{
		{Name: "name", Type: engine.TypeString},
		{Name: "version", Type: engine.TypeInt},
		{Name: "stage", Type: engine.TypeString},
		{Name: "creator", Type: engine.TypeString},
		{Name: "created_at", Type: engine.TypeString},
		{Name: "inputs", Type: engine.TypeString},
		{Name: "blob", Type: engine.TypeString},
	})
	if err != nil {
		return nil, fmt.Errorf("core: creating model system table: %w", err)
	}
	return r, nil
}

// Create stores a new version of the named model (starting in staging) and
// returns the assigned version number.
func (r *ModelRegistry) Create(name, creator string, g *onnx.Graph) (int, error) {
	if err := g.Validate(); err != nil {
		return 0, fmt.Errorf("core: refusing to register invalid model %q: %w", name, err)
	}
	blob, err := onnx.Marshal(g)
	if err != nil {
		return 0, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	version := len(r.metas[name]) + 1
	meta := ModelMeta{
		Name: name, Version: version, Stage: StageStaging, Creator: creator,
		CreatedAt: time.Now(), Inputs: g.InputNames(),
		NumNodes: g.NumNodes(), BlobSize: len(blob),
	}
	if err := r.persist(meta, blob); err != nil {
		return 0, err
	}
	r.metas[name] = append(r.metas[name], meta)
	r.graphs[key(name, version)] = g.Clone()
	r.gen++
	return version, nil
}

func key(name string, version int) string { return name + "@" + strconv.Itoa(version) }

// persist writes the model row into the system table (caller holds lock).
// The append goes through the DB's durable write path, so a deployed model
// survives a crash exactly like any committed INSERT.
func (r *ModelRegistry) persist(m ModelMeta, blob []byte) error {
	return r.db.AppendRows(modelsTable, [][]engine.Value{{
		engine.StringValue(m.Name),
		engine.IntValue(int64(m.Version)),
		engine.StringValue(string(m.Stage)),
		engine.StringValue(m.Creator),
		engine.StringValue(m.CreatedAt.UTC().Format(time.RFC3339)),
		engine.StringValue(strings.Join(m.Inputs, ",")),
		engine.StringValue(base64.StdEncoding.EncodeToString(blob)),
	}})
}

// Promote moves a model version to a lifecycle stage. Promoting a version
// to production demotes any other production version of the same model.
func (r *ModelRegistry) Promote(name string, version int, stage Stage) error {
	switch stage {
	case StageStaging, StageProduction, StageRetired:
	default:
		return fmt.Errorf("core: unknown stage %q", stage)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.promoteLocked(name, version, stage)
}

func (r *ModelRegistry) promoteLocked(name string, version int, stage Stage) error {
	versions := r.metas[name]
	idx := -1
	for i := range versions {
		if versions[i].Version == version {
			idx = i
		}
	}
	if idx < 0 {
		return fmt.Errorf("core: model %s version %d not found", name, version)
	}
	if stage == StageProduction {
		for i := range versions {
			if versions[i].Stage == StageProduction && i != idx {
				versions[i].Stage = StageRetired
				r.syncStage(versions[i])
			}
		}
	}
	versions[idx].Stage = stage
	r.syncStage(versions[idx])
	r.gen++
	return nil
}

// syncStage mirrors a stage change into the system table.
func (r *ModelRegistry) syncStage(m ModelMeta) {
	q := fmt.Sprintf("UPDATE %s SET stage = '%s' WHERE name = '%s' AND version = %d",
		modelsTable, m.Stage, m.Name, m.Version)
	// The system table always exists and the statement is well formed;
	// an error here would indicate registry corruption.
	if _, err := r.db.Exec(q); err != nil {
		panic(fmt.Sprintf("core: model system table out of sync: %v", err))
	}
}

// Deployment is one step of a transactional deployment.
type Deployment struct {
	Name    string
	Graph   *onnx.Graph // nil to promote an existing version
	Version int         // used when Graph is nil
	Creator string
}

// DeployAll atomically deploys a set of models to production: either every
// deployment validates and applies, or none does. This is the paper's
// requirement that "multiple models might have to be updated
// transactionally" (e.g. a featurizer model and its downstream scorer).
func (r *ModelRegistry) DeployAll(deps []Deployment) error {
	r.mu.Lock()
	defer r.mu.Unlock()

	// Phase 1: validate everything up front.
	blobs := make([][]byte, len(deps))
	for i, d := range deps {
		if d.Graph != nil {
			if err := d.Graph.Validate(); err != nil {
				return fmt.Errorf("core: DeployAll: model %q invalid, nothing deployed: %w", d.Name, err)
			}
			blob, err := onnx.Marshal(d.Graph)
			if err != nil {
				return fmt.Errorf("core: DeployAll: model %q, nothing deployed: %w", d.Name, err)
			}
			blobs[i] = blob
		} else {
			found := false
			for _, m := range r.metas[d.Name] {
				if m.Version == d.Version {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("core: DeployAll: model %s version %d not found, nothing deployed", d.Name, d.Version)
			}
		}
	}

	// Phase 2: apply. All mutations below cannot fail validation anymore.
	for i, d := range deps {
		version := d.Version
		if d.Graph != nil {
			version = len(r.metas[d.Name]) + 1
			meta := ModelMeta{
				Name: d.Name, Version: version, Stage: StageStaging, Creator: d.Creator,
				CreatedAt: time.Now(), Inputs: d.Graph.InputNames(),
				NumNodes: d.Graph.NumNodes(), BlobSize: len(blobs[i]),
			}
			if err := r.persist(meta, blobs[i]); err != nil {
				// Appending to the system table can only fail on schema
				// drift; treat as corruption.
				panic(fmt.Sprintf("core: model system table out of sync: %v", err))
			}
			r.metas[d.Name] = append(r.metas[d.Name], meta)
			r.graphs[key(d.Name, version)] = d.Graph.Clone()
		}
		if err := r.promoteLocked(d.Name, version, StageProduction); err != nil {
			panic(fmt.Sprintf("core: DeployAll postcondition violated: %v", err))
		}
	}
	return nil
}

// GraphFor implements opt.ModelProvider: it resolves a model name (or
// "name@version") to its graph, preferring the production version.
func (r *ModelRegistry) GraphFor(name string) (*onnx.Graph, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if at := strings.LastIndex(name, "@"); at > 0 {
		v, err := strconv.Atoi(name[at+1:])
		if err == nil {
			g, ok := r.graphs[key(name[:at], v)]
			if !ok {
				return nil, fmt.Errorf("core: model %s not found", name)
			}
			return g, nil
		}
	}
	versions := r.metas[name]
	if len(versions) == 0 {
		return nil, fmt.Errorf("core: model %q not deployed", name)
	}
	// Prefer production; otherwise the newest non-retired; otherwise error.
	var pick *ModelMeta
	for i := range versions {
		m := &versions[i]
		if m.Stage == StageProduction {
			pick = m
			break
		}
		if m.Stage == StageStaging {
			pick = m
		}
	}
	if pick == nil {
		return nil, fmt.Errorf("core: model %q has no active version", name)
	}
	return r.graphs[key(name, pick.Version)], nil
}

// Meta returns the metadata of a specific version.
func (r *ModelRegistry) Meta(name string, version int) (ModelMeta, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, m := range r.metas[name] {
		if m.Version == version {
			return m, nil
		}
	}
	return ModelMeta{}, fmt.Errorf("core: model %s version %d not found", name, version)
}

// List returns all model versions, sorted by name then version.
func (r *ModelRegistry) List() []ModelMeta {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []ModelMeta
	for _, versions := range r.metas {
		out = append(out, versions...)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Version < out[j].Version
	})
	return out
}

// LoadPersisted rebuilds the in-memory registry from the system table —
// the recovery path proving models really are stored as data.
func (r *ModelRegistry) LoadPersisted() error {
	res, err := r.db.Exec(fmt.Sprintf(
		"SELECT name, version, stage, creator, created_at, inputs, blob FROM %s ORDER BY name, version", modelsTable))
	if err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.graphs = map[string]*onnx.Graph{}
	r.metas = map[string][]ModelMeta{}
	for _, row := range res.Rows {
		name := row[0].(string)
		version := int(row[1].(int64))
		blob, err := base64.StdEncoding.DecodeString(row[6].(string))
		if err != nil {
			return fmt.Errorf("core: corrupt blob for %s@%d: %w", name, version, err)
		}
		g, err := onnx.Unmarshal(blob)
		if err != nil {
			return fmt.Errorf("core: corrupt model %s@%d: %w", name, version, err)
		}
		created, _ := time.Parse(time.RFC3339, row[4].(string))
		meta := ModelMeta{
			Name: name, Version: version, Stage: Stage(row[2].(string)),
			Creator: row[3].(string), CreatedAt: created,
			Inputs:   strings.Split(row[5].(string), ","),
			NumNodes: g.NumNodes(), BlobSize: len(blob),
		}
		r.metas[name] = append(r.metas[name], meta)
		r.graphs[key(name, version)] = g
	}
	r.gen++
	return nil
}

// RefreshModels reloads the registry from the persisted system table — the
// replication OnApplied hook, so a replica picks up models deployed on the
// leader as soon as their rows ship. A no-op before the system table's own
// create frame has arrived.
func (f *Flock) RefreshModels() error {
	if _, err := f.DB.Table(modelsTable); err != nil {
		return nil
	}
	return f.Models.LoadPersisted()
}
