package provenance

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/engine"
	"repro/internal/sql"
)

func TestCatalogVersioning(t *testing.T) {
	c := NewCatalog()
	e1 := c.Ensure(TypeTable, "orders")
	if e1.Version != 1 {
		t.Fatalf("first version = %d", e1.Version)
	}
	if again := c.Ensure(TypeTable, "orders"); again.ID != e1.ID {
		t.Error("Ensure should be idempotent")
	}
	e2 := c.NewVersion(TypeTable, "orders", nil)
	if e2.Version != 2 {
		t.Fatalf("second version = %d", e2.Version)
	}
	if c.Latest(TypeTable, "orders").ID != e2.ID {
		t.Error("Latest should return v2")
	}
	vs := c.Versions(TypeTable, "orders")
	if len(vs) != 2 || vs[0].Version != 1 || vs[1].Version != 2 {
		t.Errorf("versions = %v", vs)
	}
	// Version chain edge exists v2 -> v1.
	found := false
	for _, e := range c.EdgesFrom(e2.ID) {
		if e.To == e1.ID && e.Label == EdgePrevious {
			found = true
		}
	}
	if !found {
		t.Error("missing PREVIOUS_VERSION edge")
	}
}

func TestCatalogEdgeDedup(t *testing.T) {
	c := NewCatalog()
	a := c.Ensure(TypeQuery, "q1")
	b := c.Ensure(TypeTable, "t")
	c.AddEdge(a.ID, b.ID, EdgeReads)
	c.AddEdge(a.ID, b.ID, EdgeReads)
	_, edges := c.Size()
	if edges != 1 {
		t.Errorf("edges = %d, want 1 (deduplicated)", edges)
	}
}

func TestLineage(t *testing.T) {
	c := NewCatalog()
	tab := c.Ensure(TypeTable, "train_data")
	model := c.Ensure(TypeModel, "churn@1")
	query := c.Ensure(TypeQuery, "q1")
	c.AddEdge(model.ID, tab.ID, EdgeTrainedOn)
	c.AddEdge(query.ID, model.ID, EdgeScores)

	down := c.Lineage(query.ID, Downstream, 0)
	if len(down) != 2 {
		t.Fatalf("downstream of query = %d entities", len(down))
	}
	up := c.Lineage(tab.ID, Upstream, 0)
	if len(up) != 2 { // model, then query
		t.Fatalf("upstream of table = %d entities", len(up))
	}
	limited := c.Lineage(tab.ID, Upstream, 1)
	if len(limited) != 1 || limited[0].Type != TypeModel {
		t.Errorf("depth-1 upstream = %v", limited)
	}
}

func TestCaptureQueryEager(t *testing.T) {
	c := NewCatalog()
	tr := NewSQLTracker(c)
	q, err := tr.CaptureQuery("SELECT o.total, c.name FROM orders o JOIN customers c ON o.cid = c.id WHERE o.total > 10", "alice")
	if err != nil {
		t.Fatal(err)
	}
	if q.Attrs["kind"] != "select" {
		t.Errorf("kind = %v", q.Attrs)
	}
	reads := 0
	for _, e := range c.EdgesFrom(q.ID) {
		if e.Label == EdgeReads {
			reads++
		}
	}
	// 2 tables + the 2 output-affecting columns (o.total, c.name); the
	// join/filter columns do not affect the output in the coarse model.
	if reads != 4 {
		t.Errorf("read edges = %d, want 4", reads)
	}
	if c.Latest(TypeUser, "alice") == nil {
		t.Error("user entity missing")
	}
}

func TestCaptureWriteCreatesVersion(t *testing.T) {
	c := NewCatalog()
	tr := NewSQLTracker(c)
	if _, err := tr.CaptureQuery("INSERT INTO t (a) VALUES (1)", "u"); err != nil {
		t.Fatal(err)
	}
	if _, err := tr.CaptureQuery("INSERT INTO t (a) VALUES (2)", "u"); err != nil {
		t.Fatal(err)
	}
	vs := c.Versions(TypeTable, "t")
	// v1 (ensure) + one new version per write = 3
	if len(vs) != 3 {
		t.Errorf("table versions = %d, want 3", len(vs))
	}
}

func TestCapturePredictLinksModel(t *testing.T) {
	c := NewCatalog()
	tr := NewSQLTracker(c)
	q, err := tr.CaptureQuery("SELECT PREDICT(churn, age) FROM customers", "svc")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, e := range c.EdgesFrom(q.ID) {
		if e.Label == EdgeScores && strings.HasPrefix(e.To, "model:churn") {
			found = true
		}
	}
	if !found {
		t.Error("SCORES edge missing")
	}
}

func TestCaptureLogLazy(t *testing.T) {
	c := NewCatalog()
	tr := NewSQLTracker(c)
	log := []engine.LogEntry{
		{Seq: 1, Text: "SELECT a FROM t", User: "u1"},
		{Seq: 2, Text: "INSERT INTO t (a) VALUES (1)", User: "u2"},
		{Seq: 3, Text: "THIS IS NOT SQL", User: "u3"},
	}
	captured, skipped := tr.CaptureLog(log)
	if captured != 2 || skipped != 1 {
		t.Errorf("captured=%d skipped=%d", captured, skipped)
	}
	if len(c.EntitiesOfType(TypeQuery)) != 2 {
		t.Error("query entities wrong")
	}
}

func TestRecordTrainingAndImpact(t *testing.T) {
	c := NewCatalog()
	tr := NewSQLTracker(c)
	tr.RecordTraining("churn", 1, "train.py", []string{"customers", "events"},
		map[string]string{"n_trees": "100"}, map[string]string{"auc": "0.91"})
	tr.RecordTraining("fraud", 1, "fraud.py", []string{"transactions"}, nil, nil)

	impacted := tr.ImpactedModels("customers")
	if len(impacted) != 1 || impacted[0].Name != "churn@1" {
		t.Errorf("impacted = %v", impacted)
	}
	if len(tr.ImpactedModels("transactions")) != 1 {
		t.Error("fraud model not found")
	}
	if len(tr.ImpactedModels("nothing")) != 0 {
		t.Error("unknown table should impact nothing")
	}
	// Hyperparameters and metrics attached.
	mv := c.Latest(TypeModel, "churn@1")
	var hasParam, hasMetric bool
	for _, e := range c.EdgesFrom(mv.ID) {
		switch e.Label {
		case EdgeHasParam:
			hasParam = true
		case EdgeHasMetric:
			hasMetric = true
		}
	}
	if !hasParam || !hasMetric {
		t.Error("hyperparam/metric edges missing")
	}
}

func TestEndToEndLineageModelToRawTable(t *testing.T) {
	// Full chain: query scores model, model trained on table.
	c := NewCatalog()
	tr := NewSQLTracker(c)
	tr.RecordTraining("churn", 1, "train.py", []string{"customers"}, nil, nil)
	q, err := tr.CaptureQuery("SELECT PREDICT(churn, age) FROM live_data", "svc")
	if err != nil {
		t.Fatal(err)
	}
	// Hop 1: query -> model "churn"; model base PRODUCES churn@1; churn@1
	// TRAINED_ON customers. Verify "customers" is in the query's
	// downstream closure.
	found := false
	for _, e := range c.Lineage(q.ID, Downstream, 0) {
		if e.Type == TypeTable && e.Name == "customers" {
			found = true
		}
	}
	if !found {
		t.Error("training table not reachable from scoring query")
	}
}

func TestNormalizeStatement(t *testing.T) {
	s1 := mustParse(t, "SELECT a FROM t WHERE b > 5 AND c = 'x'")
	s2 := mustParse(t, "SELECT a FROM t WHERE b > 99 AND c = 'zzz'")
	s3 := mustParse(t, "SELECT a FROM t WHERE b > 5 AND d = 'x'")
	n1, n2, n3 := NormalizeStatement(s1), NormalizeStatement(s2), NormalizeStatement(s3)
	if n1 != n2 {
		t.Errorf("same template should normalize equal:\n%s\n%s", n1, n2)
	}
	if n1 == n3 {
		t.Error("different templates should normalize differently")
	}
	// IN lists of different lengths collapse to the same template.
	s4 := mustParse(t, "SELECT a FROM t WHERE b IN (1, 2)")
	s5 := mustParse(t, "SELECT a FROM t WHERE b IN (1, 2, 3, 4)")
	if NormalizeStatement(s4) != NormalizeStatement(s5) {
		t.Error("IN lists should collapse")
	}
}

func TestCompress(t *testing.T) {
	c := NewCatalog()
	tr := NewSQLTracker(c)
	// 50 queries from 2 templates.
	for i := 0; i < 25; i++ {
		if _, err := tr.CaptureQuery(fmt.Sprintf("SELECT a FROM t WHERE b = %d", i), "u"); err != nil {
			t.Fatal(err)
		}
		if _, err := tr.CaptureQuery(fmt.Sprintf("INSERT INTO t (a) VALUES (%d)", i), "u"); err != nil {
			t.Fatal(err)
		}
	}
	nodesBefore, edgesBefore := c.Size()
	compressed, res := Compress(c)
	if res.TemplatesCreated != 2 {
		t.Errorf("templates = %d, want 2", res.TemplatesCreated)
	}
	if res.QueriesCollapsed != 48 {
		t.Errorf("collapsed = %d, want 48", res.QueriesCollapsed)
	}
	nodesAfter, edgesAfter := compressed.Size()
	if nodesAfter >= nodesBefore || edgesAfter >= edgesBefore {
		t.Errorf("compression did not shrink: %d/%d -> %d/%d",
			nodesBefore, edgesBefore, nodesAfter, edgesAfter)
	}
	// Original catalog untouched.
	n2, e2 := c.Size()
	if n2 != nodesBefore || e2 != edgesBefore {
		t.Error("Compress mutated the source catalog")
	}
	// Template carries its count.
	tpls := compressed.EntitiesOfType(TypeTemplate)
	var counts int
	for _, tpl := range tpls {
		counts += atoi(tpl.Attrs["count"])
	}
	if counts != 50 {
		t.Errorf("template counts sum = %d, want 50", counts)
	}
}

// Property: versions are strictly increasing and contiguous regardless of
// the interleaving of Ensure/NewVersion calls.
func TestVersionMonotonicProperty(t *testing.T) {
	f := func(ops []bool) bool {
		c := NewCatalog()
		want := 0
		for _, newVer := range ops {
			if newVer {
				e := c.NewVersion(TypeTable, "t", nil)
				want++
				if e.Version != want {
					return false
				}
			} else {
				e := c.Ensure(TypeTable, "t")
				if want == 0 {
					want = 1
				}
				if e.Version != want {
					return false
				}
			}
		}
		return len(c.Versions(TypeTable, "t")) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func mustParse(t *testing.T, q string) sql.Statement {
	t.Helper()
	stmt, err := sql.ParseOne(q)
	if err != nil {
		t.Fatal(err)
	}
	return stmt
}
