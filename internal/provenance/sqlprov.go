package provenance

import (
	"fmt"
	"strconv"
	"sync"

	"repro/internal/engine"
	"repro/internal/sql"
)

// SQLTracker is the SQL provenance module: it extracts coarse-grained
// provenance (input tables and columns, written tables, scored models) from
// statements and populates the catalog. It supports the paper's two capture
// modes: eager (per statement, as it executes) and lazy (batch, from the
// database's query log). Trackers are safe for concurrent capture: the
// query sequence is guarded here and all graph mutations go through the
// (locked) catalog.
type SQLTracker struct {
	catalog  *Catalog
	mu       sync.Mutex
	querySeq int
}

// NewSQLTracker binds a tracker to a catalog.
func NewSQLTracker(c *Catalog) *SQLTracker { return &SQLTracker{catalog: c} }

// Catalog returns the underlying catalog.
func (tr *SQLTracker) Catalog() *Catalog { return tr.catalog }

// CaptureQuery eagerly captures provenance for one statement string issued
// by user. It returns the created query entity.
func (tr *SQLTracker) CaptureQuery(query, user string) (*Entity, error) {
	stmt, err := sql.ParseOne(query)
	if err != nil {
		return nil, fmt.Errorf("provenance: %w", err)
	}
	return tr.captureStmt(stmt, query, user), nil
}

// CaptureStmt eagerly captures provenance for an already-parsed statement —
// the prepared-statement path, which must not pay a reparse per execution.
func (tr *SQLTracker) CaptureStmt(stmt sql.Statement, text, user string) *Entity {
	return tr.captureStmt(stmt, text, user)
}

// CaptureLog lazily captures provenance from a query log, reconstructing
// the provenance model from history in one pass. Unparseable entries are
// skipped and counted (the paper's module "specializes to the engine's
// parser" for those; we record them for inspection instead).
func (tr *SQLTracker) CaptureLog(log []engine.LogEntry) (captured, skipped int) {
	for _, entry := range log {
		stmt, err := sql.ParseOne(entry.Text)
		if err != nil {
			skipped++
			continue
		}
		tr.captureStmt(stmt, entry.Text, entry.User)
		captured++
	}
	return captured, skipped
}

func (tr *SQLTracker) captureStmt(stmt sql.Statement, text, user string) *Entity {
	acc := sql.Analyze(stmt)
	tr.mu.Lock()
	tr.querySeq++
	seq := tr.querySeq
	tr.mu.Unlock()
	q := tr.catalog.NewVersion(TypeQuery, "q"+strconv.Itoa(seq), map[string]string{
		"text": text,
		"kind": stmtKind(stmt),
	})
	if user != "" {
		u := tr.catalog.Ensure(TypeUser, user)
		tr.catalog.AddEdge(q.ID, u.ID, EdgeIssuedBy)
	}

	// Reads: link to the *current* version of each input table and column,
	// so the temporal dimension is preserved. Following the paper's
	// coarse-grained model, SELECT statements record the input columns
	// "that affected the output" (projection and grouping columns), not
	// every filter column; DML statements record all referenced columns.
	for _, tab := range acc.ReadTables {
		te := tr.catalog.Ensure(TypeTable, tab)
		tr.catalog.AddEdge(q.ID, te.ID, EdgeReads)
	}
	readCols := acc.Columns
	if sel, ok := stmt.(*sql.SelectStmt); ok {
		readCols = outputColumns(sel)
	}
	for qual, cols := range readCols {
		for _, col := range cols {
			owner := qual
			if owner == "" {
				// Unqualified columns attach to the single read table when
				// unambiguous; otherwise they attach to a query-scoped
				// pseudo-table, still useful for impact analysis.
				if len(acc.ReadTables) == 1 {
					owner = acc.ReadTables[0]
				} else if len(acc.WriteTables) == 1 {
					owner = acc.WriteTables[0]
				} else {
					owner = "?"
				}
			}
			ce := tr.catalog.Ensure(TypeColumn, owner+"."+col)
			tr.catalog.AddEdge(q.ID, ce.ID, EdgeReads)
			if owner != "?" {
				te := tr.catalog.Ensure(TypeTable, owner)
				tr.catalog.AddEdge(te.ID, ce.ID, EdgeHasColumn)
			}
		}
	}

	// Writes: a write creates a NEW VERSION of the table entity ("an
	// INSERT to a table results in a new version of the table in the
	// provenance data model"), and of every column the statement assigns —
	// the temporal dimension is tracked at column granularity so that
	// column-level impact analysis (C3) sees precise write points.
	for _, tab := range acc.WriteTables {
		tr.catalog.Ensure(TypeTable, tab) // make sure v1 exists
		te := tr.catalog.NewVersion(TypeTable, tab, nil)
		tr.catalog.AddEdge(q.ID, te.ID, EdgeWrites)
		written := writtenColumns(stmt)
		for _, col := range written {
			name := tab + "." + col
			tr.catalog.Ensure(TypeColumn, name)
			ce := tr.catalog.NewVersion(TypeColumn, name, nil)
			tr.catalog.AddEdge(q.ID, ce.ID, EdgeWrites)
			tr.catalog.AddEdge(te.ID, ce.ID, EdgeHasColumn)
		}
	}

	// Models scored by the query.
	for _, m := range acc.Models {
		me := tr.catalog.Ensure(TypeModel, m)
		tr.catalog.AddEdge(q.ID, me.ID, EdgeScores)
	}
	return q
}

// outputColumns collects the columns that affect a SELECT's output: the
// projection and GROUP BY expressions, recursing through FROM subqueries
// (whose outputs feed the outer query).
func outputColumns(s *sql.SelectStmt) map[string][]string {
	cols := map[string]map[string]bool{}
	var collect func(e sql.Expr)
	collect = func(e sql.Expr) {
		sql.WalkExprs(e, func(x sql.Expr) bool {
			if cr, ok := x.(*sql.ColRef); ok {
				if cols[cr.Table] == nil {
					cols[cr.Table] = map[string]bool{}
				}
				cols[cr.Table][cr.Name] = true
			}
			return true
		})
	}
	var walk func(sel *sql.SelectStmt)
	walk = func(sel *sql.SelectStmt) {
		for _, it := range sel.Items {
			collect(it.Expr)
		}
		for _, g := range sel.GroupBy {
			collect(g)
		}
		for _, f := range sel.From {
			if f.Sub != nil {
				walk(f.Sub)
			}
		}
	}
	walk(s)
	out := map[string][]string{}
	for qual, set := range cols {
		for c := range set {
			out[qual] = append(out[qual], c)
		}
	}
	return out
}

// writtenColumns extracts the columns a DML statement assigns.
func writtenColumns(s sql.Statement) []string {
	switch st := s.(type) {
	case *sql.InsertStmt:
		return st.Columns
	case *sql.UpdateStmt:
		out := make([]string, len(st.Sets))
		for i, sc := range st.Sets {
			out[i] = sc.Column
		}
		return out
	case *sql.CreateTableStmt:
		out := make([]string, len(st.Columns))
		for i, c := range st.Columns {
			out[i] = c.Name
		}
		return out
	}
	return nil
}

func stmtKind(s sql.Statement) string {
	switch s.(type) {
	case *sql.SelectStmt:
		return "select"
	case *sql.InsertStmt:
		return "insert"
	case *sql.UpdateStmt:
		return "update"
	case *sql.DeleteStmt:
		return "delete"
	case *sql.CreateTableStmt:
		return "create"
	default:
		return "other"
	}
}

// RecordTraining links a model version to the datasets/tables it was
// trained on and the script that produced it — the cross-system bridge
// (challenge C3): the Python module finds the tables, the SQL module owns
// their entities, the catalog connects them.
func (tr *SQLTracker) RecordTraining(model string, version int, script string, tables []string, hyperparams map[string]string, metrics map[string]string) *Entity {
	name := fmt.Sprintf("%s@%d", model, version)
	mv := tr.catalog.Ensure(TypeModel, name)
	base := tr.catalog.Ensure(TypeModel, model)
	tr.catalog.AddEdge(base.ID, mv.ID, EdgeProduces)
	if script != "" {
		se := tr.catalog.Ensure(TypeScript, script)
		tr.catalog.AddEdge(se.ID, mv.ID, EdgeProduces)
	}
	for _, t := range tables {
		te := tr.catalog.Ensure(TypeTable, t)
		tr.catalog.AddEdge(mv.ID, te.ID, EdgeTrainedOn)
	}
	for k, v := range hyperparams {
		he := tr.catalog.Ensure(TypeHyperparam, name+"."+k)
		tr.catalog.SetAttr(he.ID, "value", v)
		tr.catalog.AddEdge(mv.ID, he.ID, EdgeHasParam)
	}
	for k, v := range metrics {
		me := tr.catalog.Ensure(TypeMetric, name+"."+k)
		tr.catalog.SetAttr(me.ID, "value", v)
		tr.catalog.AddEdge(mv.ID, me.ID, EdgeHasMetric)
	}
	return mv
}

// ImpactedModels answers the paper's C3 example: "if we change a column in
// a database, models trained in Python that depend on this column may need
// to be invalidated and retrained". It returns the model-version entities
// downstream of the given table.
func (tr *SQLTracker) ImpactedModels(table string) []*Entity {
	// Models point AT tables via TRAINED_ON; a model may reference any
	// historical version, so inspect every version of the table entity.
	seen := map[string]bool{}
	var out []*Entity
	for _, te := range tr.catalog.Versions(TypeTable, table) {
		for _, e := range tr.catalog.Lineage(te.ID, Upstream, 1) {
			if e.Type == TypeModel && !seen[e.ID] {
				seen[e.ID] = true
				out = append(out, e)
			}
		}
	}
	return out
}
