package provenance

import (
	"repro/internal/opt"
	"repro/internal/sql"
)

// Compression and summarization (the paper's answer to the provenance
// graph "becoming substantially large in size"): structurally identical
// queries — same template after literal normalization — are collapsed into
// a single template entity that carries an occurrence count, and their
// per-query read edges are replaced by template-level edges.

// CompressionResult reports the effect of a Compress run.
type CompressionResult struct {
	NodesBefore, NodesAfter int
	EdgesBefore, EdgesAfter int
	TemplatesCreated        int
	QueriesCollapsed        int
}

// NormalizeStatement rewrites all literals in a statement to '?'
// placeholders and returns the canonical template text.
func NormalizeStatement(stmt sql.Statement) string {
	switch s := stmt.(type) {
	case *sql.SelectStmt:
		return sql.FormatStatement(normalizeSelect(s))
	case *sql.InsertStmt:
		ns := &sql.InsertStmt{Table: s.Table, Columns: s.Columns}
		for _, row := range s.Rows {
			var nr []sql.Expr
			for _, e := range row {
				nr = append(nr, normalizeExpr(e))
			}
			ns.Rows = append(ns.Rows, nr)
		}
		return sql.FormatStatement(ns)
	case *sql.UpdateStmt:
		ns := &sql.UpdateStmt{Table: s.Table, Where: normalizeExpr(s.Where)}
		for _, sc := range s.Sets {
			ns.Sets = append(ns.Sets, sql.SetClause{Column: sc.Column, Value: normalizeExpr(sc.Value)})
		}
		return sql.FormatStatement(ns)
	case *sql.DeleteStmt:
		return sql.FormatStatement(&sql.DeleteStmt{Table: s.Table, Where: normalizeExpr(s.Where)})
	default:
		return sql.FormatStatement(stmt)
	}
}

func normalizeSelect(s *sql.SelectStmt) *sql.SelectStmt {
	ns := &sql.SelectStmt{Distinct: s.Distinct, Limit: -1}
	for _, it := range s.Items {
		ns.Items = append(ns.Items, sql.SelectItem{Star: it.Star, Alias: it.Alias, Expr: normalizeExpr(it.Expr)})
	}
	for _, f := range s.From {
		nf := f
		if f.Sub != nil {
			nf.Sub = normalizeSelect(f.Sub)
		}
		nf.On = normalizeExpr(f.On)
		ns.From = append(ns.From, nf)
	}
	ns.Where = normalizeExpr(s.Where)
	for _, g := range s.GroupBy {
		ns.GroupBy = append(ns.GroupBy, normalizeExpr(g))
	}
	ns.Having = normalizeExpr(s.Having)
	for _, o := range s.OrderBy {
		ns.OrderBy = append(ns.OrderBy, sql.OrderItem{Expr: normalizeExpr(o.Expr), Desc: o.Desc})
	}
	return ns
}

func normalizeExpr(e sql.Expr) sql.Expr {
	if e == nil {
		return nil
	}
	return opt.RewriteExpr(e, func(x sql.Expr) sql.Expr {
		switch v := x.(type) {
		case *sql.Lit:
			return &sql.Lit{Kind: sql.LitString, S: "?"}
		case *sql.Interval:
			return &sql.Interval{Value: "?", Unit: v.Unit}
		case *sql.Subquery:
			return &sql.Subquery{Sel: normalizeSelect(v.Sel)}
		case *sql.Exists:
			return &sql.Exists{Sub: normalizeSelect(v.Sub), Not: v.Not}
		case *sql.InList:
			if v.Sub != nil {
				return &sql.InList{X: v.X, Sub: normalizeSelect(v.Sub), Not: v.Not}
			}
			// Collapse the whole list to one placeholder.
			return &sql.InList{X: v.X, List: []sql.Expr{&sql.Lit{Kind: sql.LitString, S: "?"}}, Not: v.Not}
		}
		return nil
	})
}

// Compress rebuilds the catalog with query entities collapsed into
// templates. It returns the new catalog and a report. The original catalog
// is left intact (compression is a materialization step, so the full
// fidelity graph can be archived first).
func Compress(c *Catalog) (*Catalog, CompressionResult) {
	var res CompressionResult
	res.NodesBefore, res.EdgesBefore = c.Size()

	out := NewCatalog()
	templates := map[string]*Entity{} // normalized text -> template entity
	queryToTemplate := map[string]string{}

	for _, q := range c.EntitiesOfType(TypeQuery) {
		text := q.Attrs["text"]
		stmt, err := sql.ParseOne(text)
		var norm string
		if err != nil {
			norm = text // keep unparseable queries as their own template
		} else {
			norm = NormalizeStatement(stmt)
		}
		tpl, ok := templates[norm]
		if !ok {
			tpl = out.NewVersion(TypeTemplate, norm, map[string]string{"count": "0", "kind": q.Attrs["kind"]})
			templates[norm] = tpl
			res.TemplatesCreated++
		} else {
			res.QueriesCollapsed++
		}
		bump(tpl)
		queryToTemplate[q.ID] = tpl.ID
	}

	// Re-add all non-query entities (latest versions only for tables —
	// the version chain is summarized into a "versions" attribute).
	versionCounts := map[string]int{}
	for id, e := range c.allEntities() {
		_ = id
		if e.Type == TypeQuery {
			continue
		}
		key := baseKey(e.Type, e.Name)
		if e.Version > versionCounts[key] {
			versionCounts[key] = e.Version
		}
	}
	for key, maxV := range versionCounts {
		// key is "<type>:<name>"
		t, name := splitKey(key)
		ne := out.Ensure(t, name)
		if ne.Attrs == nil {
			ne.Attrs = map[string]string{}
		}
		if maxV > 1 {
			ne.Attrs["versions"] = itoa(maxV)
		}
	}

	// Re-link edges at template granularity.
	for _, e := range c.allEdges() {
		from := e.From
		if t, ok := queryToTemplate[from]; ok {
			from = t
		} else {
			from = collapseID(from)
		}
		to := e.To
		if t, ok := queryToTemplate[to]; ok {
			to = t
		} else {
			to = collapseID(to)
		}
		if e.Label == EdgePrevious {
			continue // version chains are summarized
		}
		if from == to {
			continue
		}
		// Edges into collapsed entities point at version 1 in the new
		// catalog (Ensure created v1).
		out.AddEdge(from, to, e.Label)
	}

	res.NodesAfter, res.EdgesAfter = out.Size()
	return out, res
}

func bump(e *Entity) {
	n := 0
	if e.Attrs != nil {
		n = atoi(e.Attrs["count"])
	} else {
		e.Attrs = map[string]string{}
	}
	e.Attrs["count"] = itoa(n + 1)
}

// collapseID maps "type:name@vN" to "type:name@v1" (all versions collapse).
func collapseID(id string) string {
	for i := len(id) - 1; i >= 0; i-- {
		if id[i] == '@' {
			return id[:i] + "@v1"
		}
	}
	return id
}

func splitKey(key string) (EntityType, string) {
	for i := 0; i < len(key); i++ {
		if key[i] == ':' {
			return EntityType(key[:i]), key[i+1:]
		}
	}
	return EntityType(key), ""
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func atoi(s string) int {
	n := 0
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return n
		}
		n = n*10 + int(s[i]-'0')
	}
	return n
}

// allEntities returns a snapshot of the entity map.
func (c *Catalog) allEntities() map[string]*Entity {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make(map[string]*Entity, len(c.entities))
	for k, v := range c.entities {
		out[k] = v
	}
	return out
}

// allEdges returns a snapshot of the edges.
func (c *Catalog) allEdges() []Edge {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return append([]Edge(nil), c.edges...)
}
