// Package provenance implements the catalog and capture modules of §4.2: a
// polymorphic, temporal provenance graph (tables, columns, queries, models,
// scripts, hyperparameters, metrics — all versioned), an Atlas-style
// in-process catalog that bridges the SQL and Python capture modules, eager
// and lazy SQL provenance capture, and compression/summarization of the
// captured graph.
package provenance

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// EntityType classifies catalog entities (the "polymorphic" dimension of
// challenge C1).
type EntityType string

// Entity types.
const (
	TypeTable      EntityType = "table"
	TypeColumn     EntityType = "column"
	TypeQuery      EntityType = "query"
	TypeTemplate   EntityType = "template"
	TypeModel      EntityType = "model"
	TypeScript     EntityType = "script"
	TypeDataset    EntityType = "dataset"
	TypeHyperparam EntityType = "hyperparam"
	TypeMetric     EntityType = "metric"
	TypeUser       EntityType = "user"
)

// Edge labels.
const (
	EdgeReads     = "READS"
	EdgeWrites    = "WRITES"
	EdgeScores    = "SCORES"
	EdgeHasColumn = "HAS_COLUMN"
	EdgeTrainedOn = "TRAINED_ON"
	EdgeProduces  = "PRODUCES"
	EdgeHasParam  = "HAS_PARAM"
	EdgeHasMetric = "HAS_METRIC"
	EdgeIssuedBy  = "ISSUED_BY"
	EdgePrevious  = "PREVIOUS_VERSION"
)

// Entity is one node of the provenance graph. Entities are versioned: a
// write to a table yields a new version entity chained to its predecessor
// (the "temporal" dimension of challenge C1).
type Entity struct {
	ID      string // "<type>:<name>@v<version>"
	Type    EntityType
	Name    string
	Version int
	Attrs   map[string]string
	Seq     int64 // creation sequence (logical time)
}

// Edge is a directed, labeled edge between entities.
type Edge struct {
	From  string
	To    string
	Label string
	Seq   int64
}

// Catalog is the thread-safe provenance store shared by all capture
// modules; it plays the role Apache Atlas plays in the paper's prototype.
type Catalog struct {
	mu       sync.RWMutex
	entities map[string]*Entity
	latest   map[string]int // "<type>:<name>" -> latest version
	edges    []Edge
	edgeSet  map[string]bool // dedup key From|Label|To
	out      map[string][]int
	in       map[string][]int
	seq      int64
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		entities: map[string]*Entity{},
		latest:   map[string]int{},
		edgeSet:  map[string]bool{},
		out:      map[string][]int{},
		in:       map[string][]int{},
	}
}

func entityID(t EntityType, name string, version int) string {
	return string(t) + ":" + name + "@v" + strconv.Itoa(version)
}

func baseKey(t EntityType, name string) string { return string(t) + ":" + name }

// Ensure returns the latest version of the (type, name) entity, creating
// version 1 if absent.
func (c *Catalog) Ensure(t EntityType, name string) *Entity {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ensureLocked(t, name)
}

func (c *Catalog) ensureLocked(t EntityType, name string) *Entity {
	key := baseKey(t, name)
	if v, ok := c.latest[key]; ok {
		return c.entities[entityID(t, name, v)]
	}
	return c.newVersionLocked(t, name, nil)
}

// NewVersion creates a new version of the (type, name) entity, chaining it
// to the previous version with a PREVIOUS_VERSION edge.
func (c *Catalog) NewVersion(t EntityType, name string, attrs map[string]string) *Entity {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.newVersionLocked(t, name, attrs)
}

func (c *Catalog) newVersionLocked(t EntityType, name string, attrs map[string]string) *Entity {
	key := baseKey(t, name)
	version := c.latest[key] + 1
	c.seq++
	e := &Entity{
		ID: entityID(t, name, version), Type: t, Name: name,
		Version: version, Attrs: attrs, Seq: c.seq,
	}
	c.entities[e.ID] = e
	if version > 1 {
		c.addEdgeLocked(e.ID, entityID(t, name, version-1), EdgePrevious)
	}
	c.latest[key] = version
	return e
}

// Latest returns the newest version of the entity, or nil.
func (c *Catalog) Latest(t EntityType, name string) *Entity {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.latest[baseKey(t, name)]
	if !ok {
		return nil
	}
	return c.entities[entityID(t, name, v)]
}

// Versions returns every stored version of the (type, name) entity in
// ascending version order.
func (c *Catalog) Versions(t EntityType, name string) []*Entity {
	c.mu.RLock()
	defer c.mu.RUnlock()
	latest := c.latest[baseKey(t, name)]
	out := make([]*Entity, 0, latest)
	for v := 1; v <= latest; v++ {
		if e := c.entities[entityID(t, name, v)]; e != nil {
			out = append(out, e)
		}
	}
	return out
}

// Get returns an entity by ID, or nil.
func (c *Catalog) Get(id string) *Entity {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return c.entities[id]
}

// SetAttr sets one attribute on a stored entity under the catalog lock.
// Entity pointers are shared across capture modules, so attribute writes
// must be synchronized here rather than mutating Entity.Attrs directly.
func (c *Catalog) SetAttr(id, key, value string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.entities[id]
	if e == nil {
		return
	}
	if e.Attrs == nil {
		e.Attrs = map[string]string{}
	}
	e.Attrs[key] = value
}

// AddEdge inserts a deduplicated, labeled edge.
func (c *Catalog) AddEdge(from, to, label string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.addEdgeLocked(from, to, label)
}

func (c *Catalog) addEdgeLocked(from, to, label string) {
	key := from + "|" + label + "|" + to
	if c.edgeSet[key] {
		return
	}
	c.edgeSet[key] = true
	c.seq++
	idx := len(c.edges)
	c.edges = append(c.edges, Edge{From: from, To: to, Label: label, Seq: c.seq})
	c.out[from] = append(c.out[from], idx)
	c.in[to] = append(c.in[to], idx)
}

// Size returns the node and edge counts (the paper's provenance-table
// metric is nodes+edges).
func (c *Catalog) Size() (nodes, edges int) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	return len(c.entities), len(c.edges)
}

// EntitiesOfType lists entities of one type, ordered by creation.
func (c *Catalog) EntitiesOfType(t EntityType) []*Entity {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []*Entity
	for _, e := range c.entities {
		if e.Type == t {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Direction selects lineage traversal direction.
type Direction int

// Traversal directions: Upstream follows incoming edges (what produced
// this), Downstream follows outgoing edges (what this produced).
const (
	Upstream Direction = iota
	Downstream
)

// Lineage returns the entities reachable from id within maxDepth hops in
// the given direction, breadth-first, excluding id itself. maxDepth <= 0
// means unbounded.
func (c *Catalog) Lineage(id string, dir Direction, maxDepth int) []*Entity {
	c.mu.RLock()
	defer c.mu.RUnlock()
	type item struct {
		id    string
		depth int
	}
	seen := map[string]bool{id: true}
	var out []*Entity
	queue := []item{{id, 0}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if maxDepth > 0 && cur.depth >= maxDepth {
			continue
		}
		var idxs []int
		if dir == Downstream {
			idxs = c.out[cur.id]
		} else {
			idxs = c.in[cur.id]
		}
		for _, ei := range idxs {
			var next string
			if dir == Downstream {
				next = c.edges[ei].To
			} else {
				next = c.edges[ei].From
			}
			if seen[next] {
				continue
			}
			seen[next] = true
			if e := c.entities[next]; e != nil {
				out = append(out, e)
				queue = append(queue, item{next, cur.depth + 1})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// EdgesFrom returns the outgoing edges of an entity.
func (c *Catalog) EdgesFrom(id string) []Edge {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Edge
	for _, idx := range c.out[id] {
		out = append(out, c.edges[idx])
	}
	return out
}

// EdgesTo returns the incoming edges of an entity.
func (c *Catalog) EdgesTo(id string) []Edge {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var out []Edge
	for _, idx := range c.in[id] {
		out = append(out, c.edges[idx])
	}
	return out
}

// String summarizes the catalog.
func (c *Catalog) String() string {
	n, e := c.Size()
	return fmt.Sprintf("catalog{nodes=%d edges=%d}", n, e)
}
