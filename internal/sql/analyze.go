package sql

import "sort"

// Access summarizes which tables and columns a statement reads and writes,
// plus the models it scores. This coarse-grained structural analysis is
// what the eager provenance-capture mode extracts per query.
type Access struct {
	ReadTables  []string
	WriteTables []string
	// Columns maps table-or-alias qualifier ("" for unqualified) to the
	// referenced column names.
	Columns map[string][]string
	Models  []string
}

// Analyze extracts the coarse-grained access summary of a statement.
func Analyze(s Statement) Access {
	a := &accessBuilder{
		reads:  map[string]bool{},
		writes: map[string]bool{},
		cols:   map[string]map[string]bool{},
		models: map[string]bool{},
	}
	a.statement(s)
	return a.finish()
}

type accessBuilder struct {
	reads, writes map[string]bool
	cols          map[string]map[string]bool
	models        map[string]bool
}

func (a *accessBuilder) finish() Access {
	out := Access{Columns: map[string][]string{}}
	out.ReadTables = sortedKeys(a.reads)
	out.WriteTables = sortedKeys(a.writes)
	out.Models = sortedKeys(a.models)
	for q, set := range a.cols {
		out.Columns[q] = sortedKeys(set)
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	if len(m) == 0 {
		return nil
	}
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func (a *accessBuilder) statement(s Statement) {
	switch st := s.(type) {
	case *SelectStmt:
		a.selectStmt(st)
	case *InsertStmt:
		a.writes[st.Table] = true
		for _, c := range st.Columns {
			a.col(st.Table, c)
		}
		for _, row := range st.Rows {
			for _, e := range row {
				a.expr(e)
			}
		}
		if st.Query != nil {
			a.selectStmt(st.Query)
		}
	case *UpdateStmt:
		a.writes[st.Table] = true
		a.reads[st.Table] = true
		for _, sc := range st.Sets {
			a.col(st.Table, sc.Column)
			a.expr(sc.Value)
		}
		a.expr(st.Where)
	case *DeleteStmt:
		a.writes[st.Table] = true
		a.reads[st.Table] = true
		a.expr(st.Where)
	case *CreateTableStmt:
		a.writes[st.Table] = true
		for _, c := range st.Columns {
			a.col(st.Table, c.Name)
		}
	}
}

func (a *accessBuilder) selectStmt(s *SelectStmt) {
	for _, f := range s.From {
		if f.Sub != nil {
			a.selectStmt(f.Sub)
		} else if f.Table != "" {
			a.reads[f.Table] = true
		}
		a.expr(f.On)
	}
	for _, it := range s.Items {
		a.expr(it.Expr)
	}
	a.expr(s.Where)
	for _, g := range s.GroupBy {
		a.expr(g)
	}
	a.expr(s.Having)
	for _, o := range s.OrderBy {
		a.expr(o.Expr)
	}
}

func (a *accessBuilder) col(qualifier, name string) {
	set := a.cols[qualifier]
	if set == nil {
		set = map[string]bool{}
		a.cols[qualifier] = set
	}
	set[name] = true
}

func (a *accessBuilder) expr(e Expr) {
	if e == nil {
		return
	}
	WalkExprs(e, func(x Expr) bool {
		switch n := x.(type) {
		case *ColRef:
			a.col(n.Table, n.Name)
		case *Predict:
			a.models[n.Model] = true
		}
		return true
	})
	for _, sub := range Subqueries(e) {
		a.selectStmt(sub)
	}
}
