package sql

import (
	"reflect"
	"strings"
	"testing"
)

func mustParse(t *testing.T, q string) Statement {
	t.Helper()
	s, err := ParseOne(q)
	if err != nil {
		t.Fatalf("parse %q: %v", q, err)
	}
	return s
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex("SELECT a, 1.5 FROM t -- comment\nWHERE x = 'it''s'")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	var texts []string
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
		texts = append(texts, tok.Text)
	}
	want := []string{"SELECT", "a", ",", "1.5", "FROM", "t", "WHERE", "x", "=", "it's", ""}
	for i, w := range want {
		if texts[i] != w {
			t.Errorf("token %d = %q, want %q", i, texts[i], w)
		}
	}
	if kinds[9] != TokString {
		t.Error("escaped string not lexed as string")
	}
}

func TestLexErrors(t *testing.T) {
	if _, err := Lex("SELECT 'unterminated"); err == nil {
		t.Error("unterminated string should error")
	}
	if _, err := Lex("SELECT @"); err == nil {
		t.Error("unexpected character should error")
	}
}

func TestParseSimpleSelect(t *testing.T) {
	s := mustParse(t, "SELECT a, b AS bee FROM t WHERE a > 5 ORDER BY b DESC LIMIT 10").(*SelectStmt)
	if len(s.Items) != 2 || s.Items[1].Alias != "bee" {
		t.Errorf("items: %+v", s.Items)
	}
	if s.From[0].Table != "t" {
		t.Errorf("from: %+v", s.From)
	}
	bin, ok := s.Where.(*Binary)
	if !ok || bin.Op != ">" {
		t.Errorf("where: %#v", s.Where)
	}
	if !s.OrderBy[0].Desc || s.Limit != 10 {
		t.Errorf("order/limit: %+v %d", s.OrderBy, s.Limit)
	}
}

func TestParseJoins(t *testing.T) {
	s := mustParse(t, "SELECT * FROM a, b, c WHERE a.id = b.id").(*SelectStmt)
	if len(s.From) != 3 || s.From[1].Join != JoinComma {
		t.Errorf("comma joins: %+v", s.From)
	}
	s = mustParse(t, "SELECT x FROM a JOIN b ON a.id = b.id LEFT JOIN c ON b.k = c.k").(*SelectStmt)
	if len(s.From) != 3 || s.From[1].Join != JoinInner || s.From[2].Join != JoinLeft {
		t.Errorf("explicit joins: %+v", s.From)
	}
	if s.From[1].On == nil || s.From[2].On == nil {
		t.Error("ON clauses missing")
	}
}

func TestParseSubqueries(t *testing.T) {
	q := `SELECT name FROM (SELECT name, total FROM orders GROUP BY name) AS o
	      WHERE total > (SELECT avg(total) FROM orders)
	        AND name IN (SELECT name FROM vip)
	        AND EXISTS (SELECT 1 FROM flags WHERE flags.name = o.name)`
	s := mustParse(t, q).(*SelectStmt)
	if s.From[0].Sub == nil || s.From[0].Alias != "o" {
		t.Error("FROM subquery not parsed")
	}
	subs := Subqueries(s.Where)
	if len(subs) != 3 {
		t.Errorf("found %d subqueries in WHERE, want 3", len(subs))
	}
}

func TestParsePredicates(t *testing.T) {
	s := mustParse(t, `SELECT * FROM t WHERE a BETWEEN 1 AND 10
		AND b NOT IN ('x', 'y') AND c LIKE '%foo%' AND d IS NOT NULL
		AND NOT (e = 1)`).(*SelectStmt)
	var between, inlist, like, isnull, not int
	WalkExprs(s.Where, func(e Expr) bool {
		switch x := e.(type) {
		case *Between:
			between++
		case *InList:
			inlist++
			if !x.Not {
				t.Error("NOT IN lost its negation")
			}
		case *Like:
			like++
		case *IsNull:
			isnull++
			if !x.Not {
				t.Error("IS NOT NULL lost its negation")
			}
		case *Unary:
			if x.Op == "NOT" {
				not++
			}
		}
		return true
	})
	if between != 1 || inlist != 1 || like != 1 || isnull != 1 || not != 1 {
		t.Errorf("predicate counts: between=%d in=%d like=%d isnull=%d not=%d",
			between, inlist, like, isnull, not)
	}
}

func TestParseCase(t *testing.T) {
	s := mustParse(t, `SELECT CASE WHEN a > 1 THEN 'hi' WHEN a > 0 THEN 'mid' ELSE 'lo' END FROM t`).(*SelectStmt)
	c, ok := s.Items[0].Expr.(*Case)
	if !ok || len(c.Whens) != 2 || c.Else == nil {
		t.Errorf("case: %#v", s.Items[0].Expr)
	}
	if _, err := ParseOne("SELECT CASE END FROM t"); err == nil {
		t.Error("CASE without WHEN should error")
	}
}

func TestParsePredict(t *testing.T) {
	s := mustParse(t, "SELECT PREDICT(churn_v2, age, income) AS score FROM customers WHERE PREDICT(churn_v2, age, income) > 0.8").(*SelectStmt)
	pr, ok := s.Items[0].Expr.(*Predict)
	if !ok || pr.Model != "churn_v2" || len(pr.Args) != 2 {
		t.Fatalf("predict: %#v", s.Items[0].Expr)
	}
	acc := Analyze(s)
	if len(acc.Models) != 1 || acc.Models[0] != "churn_v2" {
		t.Errorf("models: %v", acc.Models)
	}
}

func TestParseAggregatesAndGroupBy(t *testing.T) {
	s := mustParse(t, `SELECT region, count(*), sum(amount), avg(DISTINCT amount)
		FROM orders GROUP BY region HAVING sum(amount) > 100`).(*SelectStmt)
	fc := s.Items[1].Expr.(*FuncCall)
	if !fc.Star || fc.Name != "count" {
		t.Errorf("count(*): %#v", fc)
	}
	if !s.Items[3].Expr.(*FuncCall).Distinct {
		t.Error("DISTINCT aggregate lost")
	}
	if len(s.GroupBy) != 1 || s.Having == nil {
		t.Error("group by / having missing")
	}
}

func TestParseDateInterval(t *testing.T) {
	s := mustParse(t, "SELECT * FROM orders WHERE o_date >= DATE '1994-01-01' AND o_date < DATE '1994-01-01' + INTERVAL '1' year").(*SelectStmt)
	found := 0
	WalkExprs(s.Where, func(e Expr) bool {
		if iv, ok := e.(*Interval); ok {
			if iv.Value != "1" || iv.Unit != "year" {
				t.Errorf("interval: %#v", iv)
			}
			found++
		}
		return true
	})
	if found != 1 {
		t.Errorf("found %d intervals", found)
	}
}

func TestParseInsertUpdateDeleteCreate(t *testing.T) {
	ins := mustParse(t, "INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").(*InsertStmt)
	if ins.Table != "t" || len(ins.Rows) != 2 || len(ins.Columns) != 2 {
		t.Errorf("insert: %+v", ins)
	}
	up := mustParse(t, "UPDATE t SET a = a + 1, b = 'z' WHERE a < 5").(*UpdateStmt)
	if len(up.Sets) != 2 || up.Where == nil {
		t.Errorf("update: %+v", up)
	}
	del := mustParse(t, "DELETE FROM t WHERE a = 3").(*DeleteStmt)
	if del.Table != "t" || del.Where == nil {
		t.Errorf("delete: %+v", del)
	}
	ct := mustParse(t, "CREATE TABLE t (a int, b float, c text, d bool)").(*CreateTableStmt)
	if len(ct.Columns) != 4 || ct.Columns[2].Type != "text" {
		t.Errorf("create: %+v", ct)
	}
}

func TestParseMultipleStatements(t *testing.T) {
	stmts, err := Parse("CREATE TABLE t (a int); INSERT INTO t VALUES (1); SELECT a FROM t;")
	if err != nil {
		t.Fatal(err)
	}
	if len(stmts) != 3 {
		t.Fatalf("got %d statements", len(stmts))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                        // handled: no statements is fine -> use ParseOne
		"SELECT",                  // missing items
		"SELECT a FROM",           // missing table
		"SELECT a FROM t WHERE",   // missing predicate
		"INSERT INTO t",           // missing VALUES
		"CREATE TABLE t (a blob)", // bad type
		"SELECT a FROM t LIMIT x", // bad limit
		"FOO BAR",                 // unknown statement
		"SELECT (SELECT a FROM t", // unclosed
		"SELECT a b c FROM t",     // junk after alias
	}
	for _, q := range bad {
		if _, err := ParseOne(q); err == nil {
			t.Errorf("expected error for %q", q)
		}
	}
}

func TestOperatorPrecedence(t *testing.T) {
	s := mustParse(t, "SELECT * FROM t WHERE a + b * 2 > 10 AND c = 1 OR d = 2").(*SelectStmt)
	// Must parse as ((a + (b*2)) > 10 AND c = 1) OR d = 2
	or, ok := s.Where.(*Binary)
	if !ok || or.Op != "OR" {
		t.Fatalf("top is %#v, want OR", s.Where)
	}
	and, ok := or.L.(*Binary)
	if !ok || and.Op != "AND" {
		t.Fatalf("left is %#v, want AND", or.L)
	}
	cmp := and.L.(*Binary)
	if cmp.Op != ">" {
		t.Fatalf("cmp is %q", cmp.Op)
	}
	add := cmp.L.(*Binary)
	if add.Op != "+" {
		t.Fatalf("add is %q", add.Op)
	}
	if mul := add.R.(*Binary); mul.Op != "*" {
		t.Fatalf("mul is %q", mul.Op)
	}
}

func TestAnalyze(t *testing.T) {
	s := mustParse(t, `SELECT c.name, sum(o.total) FROM customers c JOIN orders o ON c.id = o.cust_id
		WHERE c.region IN (SELECT region FROM top_regions) GROUP BY c.name`)
	acc := Analyze(s)
	wantReads := []string{"customers", "orders", "top_regions"}
	if !reflect.DeepEqual(acc.ReadTables, wantReads) {
		t.Errorf("reads = %v, want %v", acc.ReadTables, wantReads)
	}
	if len(acc.WriteTables) != 0 {
		t.Errorf("writes = %v", acc.WriteTables)
	}
	if cols := acc.Columns["c"]; len(cols) != 3 { // name, id, region
		t.Errorf("c columns = %v", cols)
	}

	up := mustParse(t, "UPDATE stock SET qty = qty - 1 WHERE item = 5")
	acc = Analyze(up)
	if len(acc.WriteTables) != 1 || acc.WriteTables[0] != "stock" {
		t.Errorf("update writes = %v", acc.WriteTables)
	}
	if len(acc.ReadTables) != 1 {
		t.Errorf("update reads = %v", acc.ReadTables)
	}
}

// Round-trip property: format(parse(q)) reparses to the same AST and the
// same formatted text (fixpoint).
func TestFormatRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT a, b AS bee FROM t WHERE a > 5 ORDER BY b DESC LIMIT 10",
		"SELECT DISTINCT region FROM orders",
		"SELECT count(*) FROM t GROUP BY a HAVING count(*) > 2",
		"SELECT CASE WHEN a > 1 THEN 'x' ELSE 'y' END FROM t",
		"SELECT * FROM a JOIN b ON a.id = b.id WHERE a.v BETWEEN 1 AND 2",
		"SELECT PREDICT(m, x, y) AS s FROM t WHERE PREDICT(m, x, y) >= 0.5",
		"INSERT INTO t (a, b) VALUES (1, 'it''s'), (2, NULL)",
		"UPDATE t SET a = a + 1 WHERE b LIKE '%z%'",
		"DELETE FROM t WHERE a IS NOT NULL",
		"CREATE TABLE t (a int, b text)",
		"SELECT x FROM t WHERE d >= DATE '1995-03-15' AND d < DATE '1995-03-15' + INTERVAL '90' day",
		"SELECT a FROM t WHERE b IN (1, 2, 3) AND NOT EXISTS (SELECT 1 FROM u WHERE u.a = t.a)",
		"SELECT -a, a % 2 FROM t WHERE NOT (a = 1) OR a <> 2",
		"SELECT substring(name, 1, 3) FROM t",
	}
	for _, q := range queries {
		s1, err := ParseOne(q)
		if err != nil {
			t.Fatalf("parse %q: %v", q, err)
		}
		f1 := FormatStatement(s1)
		s2, err := ParseOne(f1)
		if err != nil {
			t.Fatalf("reparse of %q -> %q: %v", q, f1, err)
		}
		f2 := FormatStatement(s2)
		if f1 != f2 {
			t.Errorf("format not a fixpoint:\n%s\n%s", f1, f2)
		}
		if !reflect.DeepEqual(s1, s2) {
			t.Errorf("ASTs differ after round trip for %q", q)
		}
	}
}

func TestSubstringFromFor(t *testing.T) {
	s := mustParse(t, "SELECT SUBSTRING(c_phone FROM 1 FOR 2) FROM customer").(*SelectStmt)
	fc, ok := s.Items[0].Expr.(*FuncCall)
	if !ok || fc.Name != "substring" || len(fc.Args) != 3 {
		t.Fatalf("substring: %#v", s.Items[0].Expr)
	}
}

func TestCaseInsensitivity(t *testing.T) {
	s := mustParse(t, "select A, B from T where A = 1").(*SelectStmt)
	if s.From[0].Table != "t" {
		t.Error("table names should be lower-cased")
	}
	if s.Items[0].Expr.(*ColRef).Name != "a" {
		t.Error("column names should be lower-cased")
	}
}

func TestFormatExprStandalone(t *testing.T) {
	e := &Binary{Op: "+", L: &ColRef{Name: "a"}, R: &Lit{Kind: LitFloat, F: 1.5}}
	if got := FormatExpr(e); got != "(a + 1.5)" {
		t.Errorf("FormatExpr = %q", got)
	}
	if !strings.Contains(FormatExpr(&Lit{Kind: LitFloat, F: 2}), "2.0") {
		t.Error("whole floats should render with a decimal point")
	}
}

func TestParseInsertSelect(t *testing.T) {
	s := mustParse(t, "INSERT INTO scores (id, s) SELECT id, PREDICT(m, age) FROM customers WHERE age > 40").(*InsertStmt)
	if s.Query == nil || len(s.Columns) != 2 || len(s.Rows) != 0 {
		t.Fatalf("insert-select: %+v", s)
	}
	acc := Analyze(s)
	if len(acc.WriteTables) != 1 || acc.WriteTables[0] != "scores" {
		t.Errorf("writes = %v", acc.WriteTables)
	}
	if len(acc.ReadTables) != 1 || acc.ReadTables[0] != "customers" {
		t.Errorf("reads = %v", acc.ReadTables)
	}
	// Round trip.
	f1 := FormatStatement(s)
	s2, err := ParseOne(f1)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if FormatStatement(s2) != f1 {
		t.Error("format not a fixpoint for INSERT ... SELECT")
	}
}

// randExpr builds a random expression tree from a seed, used to
// property-test the printer/parser round trip on shapes no hand-written
// case covers.
func randExpr(r *randSrc, depth int) Expr {
	if depth <= 0 {
		switch r.n(4) {
		case 0:
			return &ColRef{Name: string(rune('a' + r.n(5)))}
		case 1:
			return &ColRef{Table: "t" + string(rune('0'+r.n(3))), Name: string(rune('a' + r.n(5)))}
		case 2:
			return &Lit{Kind: LitInt, I: int64(r.n(100))}
		default:
			return &Lit{Kind: LitString, S: "s" + string(rune('0'+r.n(10)))}
		}
	}
	switch r.n(8) {
	case 0:
		return &Binary{Op: []string{"+", "-", "*", "AND", "OR", "=", "<", ">="}[r.n(8)],
			L: randExpr(r, depth-1), R: randExpr(r, depth-1)}
	case 1:
		return &Unary{Op: "NOT", X: randExpr(r, depth-1)}
	case 2:
		return &Unary{Op: "-", X: randExpr(r, depth-1)}
	case 3:
		return &Between{X: randExpr(r, depth-1), Lo: randExpr(r, 0), Hi: randExpr(r, 0), Not: r.n(2) == 0}
	case 4:
		return &InList{X: randExpr(r, depth-1), List: []Expr{randExpr(r, 0), randExpr(r, 0)}, Not: r.n(2) == 0}
	case 5:
		return &Like{X: randExpr(r, depth-1), Pattern: &Lit{Kind: LitString, S: "%x%"}, Not: r.n(2) == 0}
	case 6:
		return &Case{Whens: []When{{Cond: randExpr(r, depth-1), Then: randExpr(r, 0)}}, Else: randExpr(r, 0)}
	default:
		return &FuncCall{Name: "substring", Args: []Expr{randExpr(r, depth-1), &Lit{Kind: LitInt, I: 1}, &Lit{Kind: LitInt, I: 2}}}
	}
}

type randSrc struct{ state uint64 }

func (r *randSrc) n(m int) int {
	r.state = r.state*6364136223846793005 + 1442695040888963407
	return int((r.state >> 33) % uint64(m))
}

func TestRandomExprRoundTripProperty(t *testing.T) {
	for seed := uint64(1); seed <= 300; seed++ {
		r := &randSrc{state: seed}
		e := randExpr(r, 1+r.n(3))
		text := "SELECT " + FormatExpr(e) + " FROM t"
		s1, err := ParseOne(text)
		if err != nil {
			t.Fatalf("seed %d: generated SQL does not parse: %v\n%s", seed, err, text)
		}
		f1 := FormatStatement(s1)
		s2, err := ParseOne(f1)
		if err != nil {
			t.Fatalf("seed %d: reparse failed: %v\n%s", seed, err, f1)
		}
		if f2 := FormatStatement(s2); f1 != f2 {
			t.Fatalf("seed %d: format not a fixpoint:\n%s\n%s", seed, f1, f2)
		}
	}
}
