package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// FormatStatement renders a statement back to SQL text. The output reparses
// to a structurally identical AST (verified by property tests), which the
// provenance module relies on when storing query text in the catalog.
func FormatStatement(s Statement) string {
	var b strings.Builder
	writeStatement(&b, s)
	return b.String()
}

// FormatExpr renders an expression to SQL text.
func FormatExpr(e Expr) string {
	var b strings.Builder
	writeExpr(&b, e)
	return b.String()
}

func writeStatement(b *strings.Builder, s Statement) {
	switch st := s.(type) {
	case *SelectStmt:
		writeSelect(b, st)
	case *InsertStmt:
		b.WriteString("INSERT INTO ")
		b.WriteString(st.Table)
		if len(st.Columns) > 0 {
			b.WriteString(" (")
			b.WriteString(strings.Join(st.Columns, ", "))
			b.WriteString(")")
		}
		if st.Query != nil {
			b.WriteString(" ")
			writeSelect(b, st.Query)
			return
		}
		b.WriteString(" VALUES ")
		for i, row := range st.Rows {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString("(")
			for j, e := range row {
				if j > 0 {
					b.WriteString(", ")
				}
				writeExpr(b, e)
			}
			b.WriteString(")")
		}
	case *UpdateStmt:
		b.WriteString("UPDATE ")
		b.WriteString(st.Table)
		b.WriteString(" SET ")
		for i, sc := range st.Sets {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(sc.Column)
			b.WriteString(" = ")
			writeExpr(b, sc.Value)
		}
		if st.Where != nil {
			b.WriteString(" WHERE ")
			writeExpr(b, st.Where)
		}
	case *DeleteStmt:
		b.WriteString("DELETE FROM ")
		b.WriteString(st.Table)
		if st.Where != nil {
			b.WriteString(" WHERE ")
			writeExpr(b, st.Where)
		}
	case *CreateTableStmt:
		b.WriteString("CREATE TABLE ")
		b.WriteString(st.Table)
		b.WriteString(" (")
		for i, c := range st.Columns {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(c.Name)
			b.WriteString(" ")
			b.WriteString(c.Type)
		}
		b.WriteString(")")
	default:
		fmt.Fprintf(b, "/* unknown statement %T */", s)
	}
}

func writeSelect(b *strings.Builder, s *SelectStmt) {
	b.WriteString("SELECT ")
	if s.Distinct {
		b.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			b.WriteString(", ")
		}
		if it.Star {
			b.WriteString("*")
			continue
		}
		writeExpr(b, it.Expr)
		if it.Alias != "" {
			b.WriteString(" AS ")
			b.WriteString(it.Alias)
		}
	}
	if len(s.From) > 0 {
		b.WriteString(" FROM ")
		for i, f := range s.From {
			switch f.Join {
			case JoinNone:
			case JoinComma:
				b.WriteString(", ")
			case JoinInner:
				b.WriteString(" JOIN ")
			case JoinLeft:
				b.WriteString(" LEFT JOIN ")
			}
			if f.Sub != nil {
				b.WriteString("(")
				writeSelect(b, f.Sub)
				b.WriteString(")")
			} else {
				b.WriteString(f.Table)
				if f.Version >= 0 {
					b.WriteString(" VERSION ")
					b.WriteString(strconv.FormatInt(f.Version, 10))
				}
			}
			if f.Alias != "" {
				b.WriteString(" AS ")
				b.WriteString(f.Alias)
			}
			if f.On != nil {
				b.WriteString(" ON ")
				writeExpr(b, f.On)
			}
			_ = i
		}
	}
	if s.Where != nil {
		b.WriteString(" WHERE ")
		writeExpr(b, s.Where)
	}
	if len(s.GroupBy) > 0 {
		b.WriteString(" GROUP BY ")
		for i, e := range s.GroupBy {
			if i > 0 {
				b.WriteString(", ")
			}
			writeExpr(b, e)
		}
	}
	if s.Having != nil {
		b.WriteString(" HAVING ")
		writeExpr(b, s.Having)
	}
	if len(s.OrderBy) > 0 {
		b.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				b.WriteString(", ")
			}
			writeExpr(b, o.Expr)
			if o.Desc {
				b.WriteString(" DESC")
			}
		}
	}
	if s.Limit >= 0 {
		b.WriteString(" LIMIT ")
		b.WriteString(strconv.FormatInt(s.Limit, 10))
	}
}

// writeOperand renders the left operand of a postfix predicate (BETWEEN,
// IN, LIKE), parenthesizing unary expressions so the predicate cannot
// rebind inside them on reparse.
func writeOperand(b *strings.Builder, e Expr) {
	if _, ok := e.(*Unary); ok {
		b.WriteString("(")
		writeExpr(b, e)
		b.WriteString(")")
		return
	}
	writeExpr(b, e)
}

func writeExpr(b *strings.Builder, e Expr) {
	switch x := e.(type) {
	case *ColRef:
		if x.Table != "" {
			b.WriteString(x.Table)
			b.WriteString(".")
		}
		b.WriteString(x.Name)
	case *Lit:
		switch x.Kind {
		case LitInt:
			b.WriteString(strconv.FormatInt(x.I, 10))
		case LitFloat:
			s := strconv.FormatFloat(x.F, 'g', -1, 64)
			if !strings.ContainsAny(s, ".eE") {
				s += ".0"
			}
			b.WriteString(s)
		case LitString:
			b.WriteString("'")
			b.WriteString(strings.ReplaceAll(x.S, "'", "''"))
			b.WriteString("'")
		case LitBool:
			if x.B {
				b.WriteString("TRUE")
			} else {
				b.WriteString("FALSE")
			}
		case LitNull:
			b.WriteString("NULL")
		}
	case *Unary:
		if x.Op == "NOT" {
			b.WriteString("NOT (")
			writeExpr(b, x.X)
			b.WriteString(")")
		} else {
			b.WriteString("-(")
			writeExpr(b, x.X)
			b.WriteString(")")
		}
	case *Binary:
		b.WriteString("(")
		writeExpr(b, x.L)
		b.WriteString(" ")
		b.WriteString(x.Op)
		b.WriteString(" ")
		writeExpr(b, x.R)
		b.WriteString(")")
	case *FuncCall:
		b.WriteString(x.Name)
		b.WriteString("(")
		if x.Star {
			b.WriteString("*")
		} else {
			if x.Distinct {
				b.WriteString("DISTINCT ")
			}
			for i, a := range x.Args {
				if i > 0 {
					b.WriteString(", ")
				}
				writeExpr(b, a)
			}
		}
		b.WriteString(")")
	case *Predict:
		b.WriteString("PREDICT(")
		b.WriteString(x.Model)
		for _, a := range x.Args {
			b.WriteString(", ")
			writeExpr(b, a)
		}
		b.WriteString(")")
	case *Between:
		b.WriteString("(")
		writeOperand(b, x.X)
		if x.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" BETWEEN ")
		writeExpr(b, x.Lo)
		b.WriteString(" AND ")
		writeExpr(b, x.Hi)
		b.WriteString(")")
	case *InList:
		b.WriteString("(")
		writeOperand(b, x.X)
		if x.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" IN (")
		if x.Sub != nil {
			writeSelect(b, x.Sub)
		} else {
			for i, v := range x.List {
				if i > 0 {
					b.WriteString(", ")
				}
				writeExpr(b, v)
			}
		}
		b.WriteString("))")
	case *Exists:
		if x.Not {
			b.WriteString("NOT ")
		}
		b.WriteString("EXISTS (")
		writeSelect(b, x.Sub)
		b.WriteString(")")
	case *Subquery:
		b.WriteString("(")
		writeSelect(b, x.Sel)
		b.WriteString(")")
	case *Like:
		b.WriteString("(")
		writeOperand(b, x.X)
		if x.Not {
			b.WriteString(" NOT")
		}
		b.WriteString(" LIKE ")
		writeExpr(b, x.Pattern)
		b.WriteString(")")
	case *IsNull:
		b.WriteString("(")
		writeExpr(b, x.X)
		b.WriteString(" IS ")
		if x.Not {
			b.WriteString("NOT ")
		}
		b.WriteString("NULL)")
	case *Case:
		b.WriteString("CASE")
		if x.Operand != nil {
			b.WriteString(" ")
			writeExpr(b, x.Operand)
		}
		for _, w := range x.Whens {
			b.WriteString(" WHEN ")
			writeExpr(b, w.Cond)
			b.WriteString(" THEN ")
			writeExpr(b, w.Then)
		}
		if x.Else != nil {
			b.WriteString(" ELSE ")
			writeExpr(b, x.Else)
		}
		b.WriteString(" END")
	case *Interval:
		b.WriteString("INTERVAL '")
		b.WriteString(x.Value)
		b.WriteString("' ")
		b.WriteString(x.Unit)
	default:
		fmt.Fprintf(b, "/* unknown expr %T */", e)
	}
}
