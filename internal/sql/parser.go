package sql

import (
	"fmt"
	"strconv"
	"strings"
)

// Parser converts tokens into statements.
type parser struct {
	toks []Token
	pos  int
	src  string
}

// Parse parses a semicolon-separated sequence of statements.
func Parse(input string) ([]Statement, error) {
	toks, err := Lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: input}
	var stmts []Statement
	for {
		for p.acceptOp(";") {
		}
		if p.peek().Kind == TokEOF {
			break
		}
		s, err := p.parseStatement()
		if err != nil {
			return nil, err
		}
		stmts = append(stmts, s)
		if !p.acceptOp(";") && p.peek().Kind != TokEOF {
			return nil, p.errf("expected ';' or end of input")
		}
	}
	return stmts, nil
}

// ParseOne parses exactly one statement.
func ParseOne(input string) (Statement, error) {
	stmts, err := Parse(input)
	if err != nil {
		return nil, err
	}
	if len(stmts) != 1 {
		return nil, fmt.Errorf("sql: expected one statement, got %d", len(stmts))
	}
	return stmts[0], nil
}

func (p *parser) peek() Token   { return p.toks[p.pos] }
func (p *parser) next() Token   { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) save() int     { return p.pos }
func (p *parser) restore(s int) { p.pos = s }

func (p *parser) errf(format string, args ...any) error {
	t := p.peek()
	near := t.Text
	if t.Kind == TokEOF {
		near = "<eof>"
	}
	return fmt.Errorf("sql: %s (near %q at offset %d)", fmt.Sprintf(format, args...), near, t.Pos)
}

func (p *parser) acceptKw(kw string) bool {
	if t := p.peek(); t.Kind == TokKeyword && t.Text == kw {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.acceptKw(kw) {
		return p.errf("expected %s", kw)
	}
	return nil
}

func (p *parser) acceptOp(op string) bool {
	if t := p.peek(); t.Kind == TokOp && t.Text == op {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectOp(op string) error {
	if !p.acceptOp(op) {
		return p.errf("expected %q", op)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if t := p.peek(); t.Kind == TokIdent {
		p.pos++
		return t.Text, nil
	}
	return "", p.errf("expected identifier")
}

func (p *parser) parseStatement() (Statement, error) {
	t := p.peek()
	if t.Kind != TokKeyword {
		return nil, p.errf("expected a statement keyword")
	}
	switch t.Text {
	case "SELECT":
		return p.parseSelect()
	case "INSERT":
		return p.parseInsert()
	case "UPDATE":
		return p.parseUpdate()
	case "DELETE":
		return p.parseDelete()
	case "CREATE":
		return p.parseCreate()
	default:
		return nil, p.errf("unsupported statement %s", t.Text)
	}
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKw("SELECT"); err != nil {
		return nil, err
	}
	s := &SelectStmt{Limit: -1}
	s.Distinct = p.acceptKw("DISTINCT")

	for {
		if p.acceptOp("*") {
			s.Items = append(s.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKw("AS") {
				a, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = a
			} else if p.peek().Kind == TokIdent {
				item.Alias = p.next().Text
			}
			s.Items = append(s.Items, item)
		}
		if !p.acceptOp(",") {
			break
		}
	}

	if p.acceptKw("FROM") {
		first := true
		for {
			join := JoinNone
			explicit := false
			if !first {
				switch {
				case p.acceptOp(","):
					join = JoinComma
				case p.acceptKw("LEFT"):
					p.acceptKw("OUTER")
					if err := p.expectKw("JOIN"); err != nil {
						return nil, err
					}
					join, explicit = JoinLeft, true
				case p.acceptKw("INNER"):
					if err := p.expectKw("JOIN"); err != nil {
						return nil, err
					}
					join, explicit = JoinInner, true
				case p.acceptKw("JOIN"):
					join, explicit = JoinInner, true
				default:
					join = -1 // no more FROM items
				}
				if join == -1 {
					break
				}
			}
			item, err := p.parseFromItem()
			if err != nil {
				return nil, err
			}
			item.Join = join
			if explicit {
				if err := p.expectKw("ON"); err != nil {
					return nil, err
				}
				on, err := p.parseExpr(0)
				if err != nil {
					return nil, err
				}
				item.On = on
			}
			s.From = append(s.From, item)
			first = false
		}
	}

	if p.acceptKw("WHERE") {
		w, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.acceptKw("GROUP") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			s.GroupBy = append(s.GroupBy, e)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("HAVING") {
		h, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		s.Having = h
	}
	if p.acceptKw("ORDER") {
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			oi := OrderItem{Expr: e}
			if p.acceptKw("DESC") {
				oi.Desc = true
			} else {
				p.acceptKw("ASC")
			}
			s.OrderBy = append(s.OrderBy, oi)
			if !p.acceptOp(",") {
				break
			}
		}
	}
	if p.acceptKw("LIMIT") {
		t := p.peek()
		if t.Kind != TokNumber {
			return nil, p.errf("expected a number after LIMIT")
		}
		p.pos++
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad LIMIT value %q", t.Text)
		}
		s.Limit = n
	}
	return s, nil
}

func (p *parser) parseFromItem() (FromItem, error) {
	item := FromItem{Version: -1}
	if p.acceptOp("(") {
		sub, err := p.parseSelect()
		if err != nil {
			return item, err
		}
		if err := p.expectOp(")"); err != nil {
			return item, err
		}
		item.Sub = sub
	} else {
		name, err := p.expectIdent()
		if err != nil {
			return item, err
		}
		item.Table = name
		// Contextual time-travel clause: "FROM t VERSION <n>". VERSION is
		// not reserved (tables may have columns named version); the clause
		// is recognized only when the identifier is followed by a number.
		if t := p.peek(); t.Kind == TokIdent && t.Text == "version" &&
			p.pos+1 < len(p.toks) && p.toks[p.pos+1].Kind == TokNumber {
			p.pos++
			v := p.next()
			n, err := strconv.ParseInt(v.Text, 10, 64)
			if err != nil {
				return item, p.errf("bad VERSION %q", v.Text)
			}
			item.Version = n
		}
	}
	if p.acceptKw("AS") {
		a, err := p.expectIdent()
		if err != nil {
			return item, err
		}
		item.Alias = a
	} else if p.peek().Kind == TokIdent {
		item.Alias = p.next().Text
	}
	if item.Sub != nil && item.Alias == "" {
		return item, p.errf("subquery in FROM requires an alias")
	}
	return item, nil
}

func (p *parser) parseInsert() (*InsertStmt, error) {
	if err := p.expectKw("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	ins := &InsertStmt{Table: table}
	if p.acceptOp("(") {
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			ins.Columns = append(ins.Columns, c)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
	}
	if t := p.peek(); t.Kind == TokKeyword && t.Text == "SELECT" {
		sub, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		ins.Query = sub
		return ins, nil
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptOp(",") {
				break
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		ins.Rows = append(ins.Rows, row)
		if !p.acceptOp(",") {
			break
		}
	}
	return ins, nil
}

func (p *parser) parseUpdate() (*UpdateStmt, error) {
	if err := p.expectKw("UPDATE"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	u := &UpdateStmt{Table: table}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectOp("="); err != nil {
			return nil, err
		}
		v, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		u.Sets = append(u.Sets, SetClause{Column: col, Value: v})
		if !p.acceptOp(",") {
			break
		}
	}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		u.Where = w
	}
	return u, nil
}

func (p *parser) parseDelete() (*DeleteStmt, error) {
	if err := p.expectKw("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &DeleteStmt{Table: table}
	if p.acceptKw("WHERE") {
		w, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		d.Where = w
	}
	return d, nil
}

func (p *parser) parseCreate() (*CreateTableStmt, error) {
	if err := p.expectKw("CREATE"); err != nil {
		return nil, err
	}
	if err := p.expectKw("TABLE"); err != nil {
		return nil, err
	}
	table, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	if err := p.expectOp("("); err != nil {
		return nil, err
	}
	ct := &CreateTableStmt{Table: table}
	for {
		name, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		typ, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		typ = strings.ToLower(typ)
		switch typ {
		case "int", "float", "text", "bool":
		default:
			return nil, p.errf("unsupported column type %q", typ)
		}
		ct.Columns = append(ct.Columns, ColDef{Name: name, Type: typ})
		if !p.acceptOp(",") {
			break
		}
	}
	if err := p.expectOp(")"); err != nil {
		return nil, err
	}
	return ct, nil
}

// Operator precedence levels.
const (
	precOr  = 1
	precAnd = 2
	precNot = 3
	precCmp = 4
	precAdd = 5
	precMul = 6
	precNeg = 7
)

func (p *parser) parseExpr(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary(minPrec)
	if err != nil {
		return nil, err
	}
	for {
		t := p.peek()
		var op string
		var prec int
		switch {
		case t.Kind == TokKeyword && t.Text == "OR":
			op, prec = "OR", precOr
		case t.Kind == TokKeyword && t.Text == "AND":
			op, prec = "AND", precAnd
		case t.Kind == TokOp && (t.Text == "=" || t.Text == "<" || t.Text == ">" ||
			t.Text == "<=" || t.Text == ">=" || t.Text == "<>" || t.Text == "!="):
			op, prec = t.Text, precCmp
			if op == "!=" {
				op = "<>"
			}
		case t.Kind == TokOp && (t.Text == "+" || t.Text == "-" || t.Text == "||"):
			op, prec = t.Text, precAdd
		case t.Kind == TokOp && (t.Text == "*" || t.Text == "/" || t.Text == "%"):
			op, prec = t.Text, precMul
		case t.Kind == TokKeyword && (t.Text == "BETWEEN" || t.Text == "IN" ||
			t.Text == "LIKE" || t.Text == "IS" || t.Text == "NOT"):
			// Postfix-style predicates at comparison precedence.
			if precCmp < minPrec {
				return lhs, nil
			}
			post, err := p.parsePostfixPredicate(lhs)
			if err != nil {
				return nil, err
			}
			if post == nil { // NOT was not part of a postfix predicate
				return lhs, nil
			}
			lhs = post
			continue
		default:
			return lhs, nil
		}
		if prec < minPrec {
			return lhs, nil
		}
		p.pos++
		rhs, err := p.parseExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Op: op, L: lhs, R: rhs}
	}
}

// parsePostfixPredicate handles x BETWEEN .. AND .., x [NOT] IN (...),
// x [NOT] LIKE p, x IS [NOT] NULL. Returns (nil, nil) if a leading NOT turns
// out not to start a postfix predicate.
func (p *parser) parsePostfixPredicate(x Expr) (Expr, error) {
	neg := false
	saved := p.save()
	if p.acceptKw("NOT") {
		if t := p.peek(); !(t.Kind == TokKeyword && (t.Text == "BETWEEN" || t.Text == "IN" || t.Text == "LIKE")) {
			p.restore(saved)
			return nil, nil
		}
		neg = true
	}
	switch {
	case p.acceptKw("BETWEEN"):
		lo, err := p.parseExpr(precAdd)
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseExpr(precAdd)
		if err != nil {
			return nil, err
		}
		return &Between{X: x, Lo: lo, Hi: hi, Not: neg}, nil
	case p.acceptKw("IN"):
		if err := p.expectOp("("); err != nil {
			return nil, err
		}
		in := &InList{X: x, Not: neg}
		if t := p.peek(); t.Kind == TokKeyword && t.Text == "SELECT" {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			in.Sub = sub
		} else {
			for {
				e, err := p.parseExpr(0)
				if err != nil {
					return nil, err
				}
				in.List = append(in.List, e)
				if !p.acceptOp(",") {
					break
				}
			}
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return in, nil
	case p.acceptKw("LIKE"):
		pat, err := p.parseExpr(precAdd)
		if err != nil {
			return nil, err
		}
		return &Like{X: x, Pattern: pat, Not: neg}, nil
	case p.acceptKw("IS"):
		not := p.acceptKw("NOT")
		if err := p.expectKw("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{X: x, Not: not}, nil
	}
	return nil, p.errf("expected a predicate")
}

func (p *parser) parseUnary(minPrec int) (Expr, error) {
	t := p.peek()
	if t.Kind == TokKeyword && t.Text == "NOT" && minPrec <= precNot {
		p.pos++
		x, err := p.parseExpr(precNot)
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	if t.Kind == TokOp && t.Text == "-" {
		p.pos++
		x, err := p.parseExpr(precNeg)
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokNumber:
		p.pos++
		if strings.ContainsAny(t.Text, ".eE") {
			f, err := strconv.ParseFloat(t.Text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.Text)
			}
			return &Lit{Kind: LitFloat, F: f}, nil
		}
		i, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.Text)
		}
		return &Lit{Kind: LitInt, I: i}, nil
	case t.Kind == TokString:
		p.pos++
		return &Lit{Kind: LitString, S: t.Text}, nil
	case t.Kind == TokKeyword:
		switch t.Text {
		case "TRUE":
			p.pos++
			return &Lit{Kind: LitBool, B: true}, nil
		case "FALSE":
			p.pos++
			return &Lit{Kind: LitBool, B: false}, nil
		case "NULL":
			p.pos++
			return &Lit{Kind: LitNull}, nil
		case "DATE":
			p.pos++
			if s := p.peek(); s.Kind == TokString {
				p.pos++
				return &Lit{Kind: LitString, S: s.Text}, nil
			}
			return nil, p.errf("expected a string after DATE")
		case "INTERVAL":
			p.pos++
			v := p.peek()
			if v.Kind != TokString {
				return nil, p.errf("expected a string after INTERVAL")
			}
			p.pos++
			unit, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &Interval{Value: v.Text, Unit: unit}, nil
		case "CASE":
			return p.parseCase()
		case "EXISTS":
			p.pos++
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &Exists{Sub: sub}, nil
		case "NOT":
			// handled in parseUnary; reaching here means NOT EXISTS(...)
			p.pos++
			if p.acceptKw("EXISTS") {
				if err := p.expectOp("("); err != nil {
					return nil, err
				}
				sub, err := p.parseSelect()
				if err != nil {
					return nil, err
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return &Exists{Sub: sub, Not: true}, nil
			}
			return nil, p.errf("unexpected NOT")
		case "PREDICT":
			p.pos++
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			model, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			pr := &Predict{Model: model}
			for p.acceptOp(",") {
				a, err := p.parseExpr(0)
				if err != nil {
					return nil, err
				}
				pr.Args = append(pr.Args, a)
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return pr, nil
		case "SUBSTRING":
			p.pos++
			if err := p.expectOp("("); err != nil {
				return nil, err
			}
			arg, err := p.parseExpr(0)
			if err != nil {
				return nil, err
			}
			args := []Expr{arg}
			// SUBSTRING(x FROM a FOR b) or SUBSTRING(x, a, b)
			if p.acceptKw("FROM") {
				a, err := p.parseExpr(0)
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if p.acceptKw("FOR") {
					b, err := p.parseExpr(0)
					if err != nil {
						return nil, err
					}
					args = append(args, b)
				}
			} else {
				for p.acceptOp(",") {
					a, err := p.parseExpr(0)
					if err != nil {
						return nil, err
					}
					args = append(args, a)
				}
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &FuncCall{Name: "substring", Args: args}, nil
		}
		return nil, p.errf("unexpected keyword %s in expression", t.Text)
	case t.Kind == TokOp && t.Text == "(":
		p.pos++
		if s := p.peek(); s.Kind == TokKeyword && s.Text == "SELECT" {
			sub, err := p.parseSelect()
			if err != nil {
				return nil, err
			}
			if err := p.expectOp(")"); err != nil {
				return nil, err
			}
			return &Subquery{Sel: sub}, nil
		}
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if err := p.expectOp(")"); err != nil {
			return nil, err
		}
		return e, nil
	case t.Kind == TokIdent:
		p.pos++
		name := t.Text
		// Function call?
		if p.acceptOp("(") {
			fc := &FuncCall{Name: name}
			if p.acceptOp("*") {
				fc.Star = true
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
				return fc, nil
			}
			fc.Distinct = p.acceptKw("DISTINCT")
			if !p.acceptOp(")") {
				for {
					a, err := p.parseExpr(0)
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, a)
					if !p.acceptOp(",") {
						break
					}
				}
				if err := p.expectOp(")"); err != nil {
					return nil, err
				}
			}
			return fc, nil
		}
		// Qualified column?
		if p.acceptOp(".") {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: name, Name: col}, nil
		}
		return &ColRef{Name: name}, nil
	}
	return nil, p.errf("unexpected token in expression")
}

func (p *parser) parseCase() (Expr, error) {
	if err := p.expectKw("CASE"); err != nil {
		return nil, err
	}
	c := &Case{}
	if t := p.peek(); !(t.Kind == TokKeyword && t.Text == "WHEN") {
		op, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		c.Operand = op
	}
	for p.acceptKw("WHEN") {
		cond, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, When{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, p.errf("CASE requires at least one WHEN")
	}
	if p.acceptKw("ELSE") {
		e, err := p.parseExpr(0)
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	return c, nil
}
