// Package sql implements the SQL front end of the engine: a lexer, a
// recursive-descent parser producing a typed AST, a printer, and structural
// analysis helpers (referenced tables and columns) used by the provenance
// capture module. The grammar covers the subset exercised by the paper's
// experiments — the full TPC-H/TPC-C template surface used in the
// provenance study plus the PREDICT() extension of §4.1.
package sql

import (
	"fmt"
	"strings"
)

// TokKind classifies lexer tokens.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString
	TokOp // operators and punctuation
)

// Token is one lexed token with its source position (for error messages).
type Token struct {
	Kind TokKind
	Text string // keywords are upper-cased; identifiers lower-cased
	Pos  int
}

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"AS": true, "AND": true, "OR": true, "NOT": true, "IN": true,
	"EXISTS": true, "BETWEEN": true, "LIKE": true, "IS": true, "NULL": true,
	"CASE": true, "WHEN": true, "THEN": true, "ELSE": true, "END": true,
	"JOIN": true, "INNER": true, "LEFT": true, "OUTER": true, "ON": true,
	"INSERT": true, "INTO": true, "VALUES": true, "UPDATE": true, "SET": true,
	"DELETE": true, "CREATE": true, "TABLE": true, "DISTINCT": true,
	"PREDICT": true, "INTERVAL": true, "DATE": true, "TRUE": true,
	"FALSE": true, "SUBSTRING": true, "FOR": true, "UNION": true, "ALL": true,
}

// Lex tokenizes the input. It returns an error for unterminated strings or
// unexpected bytes.
func Lex(input string) ([]Token, error) {
	var toks []Token
	i := 0
	n := len(input)
	for i < n {
		c := input[i]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			i++
		case c == '-' && i+1 < n && input[i+1] == '-':
			for i < n && input[i] != '\n' {
				i++
			}
		case isDigit(c) || (c == '.' && i+1 < n && isDigit(input[i+1])):
			start := i
			for i < n && (isDigit(input[i]) || input[i] == '.') {
				i++
			}
			// scientific notation
			if i < n && (input[i] == 'e' || input[i] == 'E') {
				j := i + 1
				if j < n && (input[j] == '+' || input[j] == '-') {
					j++
				}
				if j < n && isDigit(input[j]) {
					i = j
					for i < n && isDigit(input[i]) {
						i++
					}
				}
			}
			toks = append(toks, Token{Kind: TokNumber, Text: input[start:i], Pos: start})
		case isIdentStart(c):
			start := i
			for i < n && isIdentPart(input[i]) {
				i++
			}
			word := input[start:i]
			upper := strings.ToUpper(word)
			if keywords[upper] {
				toks = append(toks, Token{Kind: TokKeyword, Text: upper, Pos: start})
			} else {
				toks = append(toks, Token{Kind: TokIdent, Text: strings.ToLower(word), Pos: start})
			}
		case c == '\'':
			start := i
			i++
			var sb strings.Builder
			closed := false
			for i < n {
				if input[i] == '\'' {
					if i+1 < n && input[i+1] == '\'' { // escaped quote
						sb.WriteByte('\'')
						i += 2
						continue
					}
					i++
					closed = true
					break
				}
				sb.WriteByte(input[i])
				i++
			}
			if !closed {
				return nil, fmt.Errorf("sql: unterminated string literal at offset %d", start)
			}
			toks = append(toks, Token{Kind: TokString, Text: sb.String(), Pos: start})
		default:
			start := i
			two := ""
			if i+1 < n {
				two = input[i : i+2]
			}
			switch two {
			case "<=", ">=", "<>", "!=", "||":
				toks = append(toks, Token{Kind: TokOp, Text: two, Pos: start})
				i += 2
				continue
			}
			switch c {
			case '=', '<', '>', '+', '-', '*', '/', '(', ')', ',', '.', ';', '%':
				toks = append(toks, Token{Kind: TokOp, Text: string(c), Pos: start})
				i++
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
			}
		}
	}
	toks = append(toks, Token{Kind: TokEOF, Pos: n})
	return toks, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }
