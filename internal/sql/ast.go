package sql

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// SelectStmt is a SELECT query (possibly nested).
type SelectStmt struct {
	Distinct bool
	Items    []SelectItem
	From     []FromItem
	Where    Expr
	GroupBy  []Expr
	Having   Expr
	OrderBy  []OrderItem
	Limit    int64 // -1 when absent
}

// SelectItem is one projection: either Star, or Expr with an optional alias.
type SelectItem struct {
	Star  bool
	Expr  Expr
	Alias string
}

// JoinType distinguishes comma joins from explicit joins.
type JoinType int

// Join types. The first FROM item always has JoinNone.
const (
	JoinNone JoinType = iota
	JoinComma
	JoinInner
	JoinLeft
)

// FromItem is one entry in the FROM clause: a base table or a subquery,
// joined to the preceding items. Version requests a time-travel read of a
// historical table snapshot ("FROM t VERSION 3"); -1 means current.
type FromItem struct {
	Table   string // empty when Sub != nil
	Alias   string
	Sub     *SelectStmt
	Join    JoinType
	On      Expr // for JoinInner / JoinLeft
	Version int64
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

// InsertStmt is INSERT INTO t (cols...) VALUES (...), (...) or
// INSERT INTO t (cols...) SELECT ... (batch insert from a query).
type InsertStmt struct {
	Table   string
	Columns []string
	Rows    [][]Expr
	Query   *SelectStmt // non-nil for INSERT ... SELECT
}

// UpdateStmt is UPDATE t SET c = e, ... WHERE p.
type UpdateStmt struct {
	Table string
	Sets  []SetClause
	Where Expr
}

// SetClause is one column assignment in UPDATE.
type SetClause struct {
	Column string
	Value  Expr
}

// DeleteStmt is DELETE FROM t WHERE p.
type DeleteStmt struct {
	Table string
	Where Expr
}

// CreateTableStmt is CREATE TABLE t (col type, ...).
type CreateTableStmt struct {
	Table   string
	Columns []ColDef
}

// ColDef is one column declaration.
type ColDef struct {
	Name string
	Type string // int, float, text, bool
}

func (*SelectStmt) stmt()      {}
func (*InsertStmt) stmt()      {}
func (*UpdateStmt) stmt()      {}
func (*DeleteStmt) stmt()      {}
func (*CreateTableStmt) stmt() {}

// Expr is any scalar expression.
type Expr interface{ expr() }

// ColRef references a column, optionally qualified by table or alias.
type ColRef struct {
	Table string // optional qualifier
	Name  string
}

// LitKind classifies literal values.
type LitKind int

// Literal kinds.
const (
	LitInt LitKind = iota
	LitFloat
	LitString
	LitBool
	LitNull
)

// Lit is a literal value.
type Lit struct {
	Kind LitKind
	I    int64
	F    float64
	S    string
	B    bool
}

// Unary is NOT x or -x.
type Unary struct {
	Op string // "NOT" or "-"
	X  Expr
}

// Binary is a binary operation; Op is one of
// AND OR = <> < <= > >= + - * / %.
type Binary struct {
	Op   string
	L, R Expr
}

// FuncCall is an aggregate or scalar function call.
type FuncCall struct {
	Name     string // lower-cased: count, sum, avg, min, max, substring, ...
	Star     bool   // count(*)
	Distinct bool
	Args     []Expr
}

// Predict is the ML inference extension: PREDICT(model, arg...). It is a
// first-class AST node so the optimizer can reason about it relationally.
type Predict struct {
	Model string
	Args  []Expr
}

// Between is x [NOT] BETWEEN lo AND hi.
type Between struct {
	X, Lo, Hi Expr
	Not       bool
}

// InList is x [NOT] IN (list...) or x [NOT] IN (subquery).
type InList struct {
	X    Expr
	List []Expr
	Sub  *SelectStmt
	Not  bool
}

// Exists is [NOT] EXISTS (subquery).
type Exists struct {
	Sub *SelectStmt
	Not bool
}

// Subquery is a scalar subquery expression.
type Subquery struct {
	Sel *SelectStmt
}

// Like is x [NOT] LIKE pattern.
type Like struct {
	X       Expr
	Pattern Expr
	Not     bool
}

// IsNull is x IS [NOT] NULL.
type IsNull struct {
	X   Expr
	Not bool
}

// When is one CASE branch.
type When struct {
	Cond Expr
	Then Expr
}

// Case is CASE [operand] WHEN ... THEN ... [ELSE ...] END.
type Case struct {
	Operand Expr // nil for searched CASE
	Whens   []When
	Else    Expr
}

// Interval is INTERVAL 'n' unit, used in date arithmetic. Dates are modeled
// as ISO-8601 strings; interval arithmetic is resolved by the engine.
type Interval struct {
	Value string
	Unit  string // day, month, year
}

func (*ColRef) expr()   {}
func (*Lit) expr()      {}
func (*Unary) expr()    {}
func (*Binary) expr()   {}
func (*FuncCall) expr() {}
func (*Predict) expr()  {}
func (*Between) expr()  {}
func (*InList) expr()   {}
func (*Exists) expr()   {}
func (*Subquery) expr() {}
func (*Like) expr()     {}
func (*IsNull) expr()   {}
func (*Case) expr()     {}
func (*Interval) expr() {}

// WalkExprs calls fn for every expression node reachable from e (including
// e itself), descending into subqueries' expressions only when descend is
// true. fn returning false stops descent below that node.
func WalkExprs(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *Unary:
		WalkExprs(x.X, fn)
	case *Binary:
		WalkExprs(x.L, fn)
		WalkExprs(x.R, fn)
	case *FuncCall:
		for _, a := range x.Args {
			WalkExprs(a, fn)
		}
	case *Predict:
		for _, a := range x.Args {
			WalkExprs(a, fn)
		}
	case *Between:
		WalkExprs(x.X, fn)
		WalkExprs(x.Lo, fn)
		WalkExprs(x.Hi, fn)
	case *InList:
		WalkExprs(x.X, fn)
		for _, v := range x.List {
			WalkExprs(v, fn)
		}
	case *Like:
		WalkExprs(x.X, fn)
		WalkExprs(x.Pattern, fn)
	case *IsNull:
		WalkExprs(x.X, fn)
	case *Case:
		WalkExprs(x.Operand, fn)
		for _, w := range x.Whens {
			WalkExprs(w.Cond, fn)
			WalkExprs(w.Then, fn)
		}
		WalkExprs(x.Else, fn)
	}
}

// Subqueries returns the immediate subqueries embedded in e (IN, EXISTS and
// scalar subqueries).
func Subqueries(e Expr) []*SelectStmt {
	var subs []*SelectStmt
	WalkExprs(e, func(x Expr) bool {
		switch s := x.(type) {
		case *InList:
			if s.Sub != nil {
				subs = append(subs, s.Sub)
			}
		case *Exists:
			subs = append(subs, s.Sub)
		case *Subquery:
			subs = append(subs, s.Sel)
		}
		return true
	})
	return subs
}
