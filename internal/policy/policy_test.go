package policy

import (
	"errors"
	"testing"
	"testing/quick"
)

func TestApplyNoRules(t *testing.T) {
	e := NewEngine()
	out := e.Apply(Decision{Model: "m", Entity: "x", Score: 0.7})
	if out.Overridden || out.Denied || out.Final != 0.7 {
		t.Errorf("outcome = %+v", out)
	}
}

func TestCapMax(t *testing.T) {
	e := NewEngine()
	if err := e.AddRule(Rule{Name: "cap", Model: "tokens", CapMax: F(100), Reason: "user cap"}); err != nil {
		t.Fatal(err)
	}
	out := e.Apply(Decision{Model: "tokens", Entity: "job1", Score: 250})
	if out.Final != 100 || !out.Overridden || out.Policy != "cap" {
		t.Errorf("outcome = %+v", out)
	}
	out = e.Apply(Decision{Model: "tokens", Entity: "job2", Score: 50})
	if out.Final != 50 || out.Overridden {
		t.Errorf("under-cap outcome = %+v", out)
	}
	// Other models unaffected.
	out = e.Apply(Decision{Model: "other", Entity: "j", Score: 999})
	if out.Final != 999 {
		t.Errorf("other model clamped: %+v", out)
	}
}

func TestOverrideAndDeny(t *testing.T) {
	e := NewEngine()
	err := e.AddRule(Rule{
		Name: "floor-risky", Model: "loan",
		When:       func(d Decision) bool { return d.Attrs["debt_ratio"] > 0.8 },
		OverrideTo: F(0), Reason: "regulatory: high debt ratio",
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.AddRule(Rule{
		Name: "deny-sanctioned", Model: "loan",
		When: func(d Decision) bool { return d.Attrs["sanctioned"] == 1 },
		Deny: true, Reason: "sanctions list",
	}); err != nil {
		t.Fatal(err)
	}
	out := e.Apply(Decision{Model: "loan", Entity: "a1", Score: 0.9, Attrs: map[string]float64{"debt_ratio": 0.9}})
	if out.Final != 0 || !out.Overridden || out.Policy != "floor-risky" {
		t.Errorf("override outcome = %+v", out)
	}
	out = e.Apply(Decision{Model: "loan", Entity: "a2", Score: 0.9, Attrs: map[string]float64{"sanctioned": 1}})
	if !out.Denied {
		t.Errorf("deny outcome = %+v", out)
	}
	out = e.Apply(Decision{Model: "loan", Entity: "a3", Score: 0.9, Attrs: map[string]float64{}})
	if out.Overridden || out.Denied || out.Final != 0.9 {
		t.Errorf("clean outcome = %+v", out)
	}
}

func TestCapsCompose(t *testing.T) {
	e := NewEngine()
	if err := e.AddRule(Rule{Name: "boost", OverrideTo: F(500)}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRule(Rule{Name: "cap", CapMax: F(100)}); err != nil {
		t.Fatal(err)
	}
	out := e.Apply(Decision{Model: "m", Entity: "x", Score: 10})
	if out.Final != 100 {
		t.Errorf("caps should clamp earlier overrides: %+v", out)
	}
}

func TestDuplicateRule(t *testing.T) {
	e := NewEngine()
	if err := e.AddRule(Rule{Name: "r"}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddRule(Rule{Name: "r"}); err == nil {
		t.Error("duplicate rule should error")
	}
	if err := e.AddRule(Rule{}); err == nil {
		t.Error("unnamed rule should error")
	}
}

func TestHistory(t *testing.T) {
	e := NewEngine()
	if err := e.AddRule(Rule{Name: "cap", CapMax: F(1)}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		e.Apply(Decision{Model: "m", Entity: "x", Score: float64(i)})
	}
	h := e.History(3)
	if len(h) != 3 {
		t.Fatalf("history = %d", len(h))
	}
	if h[2].Decision.Score != 4 {
		t.Errorf("newest last: %+v", h[2].Decision)
	}
	if e.Overrides() != 3 { // scores 2,3,4 clamped; 0 and 1 not (1 == cap)
		t.Errorf("overrides = %d", e.Overrides())
	}
}

func TestTransactRollback(t *testing.T) {
	var applied []string
	step := func(name string, fail bool) Step {
		return Step{
			Name: name,
			Do: func() error {
				if fail {
					return errors.New("boom")
				}
				applied = append(applied, name)
				return nil
			},
			Undo: func() error {
				for i, a := range applied {
					if a == name {
						applied = append(applied[:i], applied[i+1:]...)
						break
					}
				}
				return nil
			},
		}
	}
	err := Transact([]Step{step("a", false), step("b", false), step("c", true)})
	if err == nil {
		t.Fatal("expected failure")
	}
	if len(applied) != 0 {
		t.Errorf("rollback incomplete: %v", applied)
	}
	if err := Transact([]Step{step("a", false), step("b", false)}); err != nil {
		t.Fatal(err)
	}
	if len(applied) != 2 {
		t.Errorf("applied = %v", applied)
	}
}

func TestApplyBatch(t *testing.T) {
	e := NewEngine()
	if err := e.AddRule(Rule{Name: "deny-neg", When: func(d Decision) bool { return d.Score < 0 }, Deny: true}); err != nil {
		t.Fatal(err)
	}
	var acted []string
	outcomes, err := e.ApplyBatch(
		[]Decision{
			{Model: "m", Entity: "a", Score: 1},
			{Model: "m", Entity: "b", Score: -1}, // denied, skipped
			{Model: "m", Entity: "c", Score: 2},
		},
		func(o Outcome) error { acted = append(acted, o.Decision.Entity); return nil },
		nil,
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(acted) != 2 || acted[0] != "a" || acted[1] != "c" {
		t.Errorf("acted = %v", acted)
	}
	if !outcomes[1].Denied {
		t.Error("decision b should be denied")
	}
}

func TestApplyBatchRollsBack(t *testing.T) {
	e := NewEngine()
	var acted []string
	_, err := e.ApplyBatch(
		[]Decision{
			{Model: "m", Entity: "a", Score: 1},
			{Model: "m", Entity: "b", Score: 2},
		},
		func(o Outcome) error {
			if o.Decision.Entity == "b" {
				return errors.New("downstream failure")
			}
			acted = append(acted, o.Decision.Entity)
			return nil
		},
		func(o Outcome) error {
			for i, a := range acted {
				if a == o.Decision.Entity {
					acted = append(acted[:i], acted[i+1:]...)
				}
			}
			return nil
		},
	)
	if err == nil {
		t.Fatal("expected batch failure")
	}
	if len(acted) != 0 {
		t.Errorf("rollback incomplete: %v", acted)
	}
}

// Property: a CapMax/CapMin pair always produces a final value within
// [min, max] (when min <= max), and is idempotent: applying the same
// decision twice yields the same final value.
func TestCapBoundsProperty(t *testing.T) {
	f := func(score float64, a, b float64) bool {
		if a > b {
			a, b = b, a
		}
		if score != score || a != a || b != b { // NaN
			return true
		}
		e := NewEngine()
		if err := e.AddRule(Rule{Name: "max", CapMax: &b}); err != nil {
			return false
		}
		if err := e.AddRule(Rule{Name: "min", CapMin: &a}); err != nil {
			return false
		}
		o1 := e.Apply(Decision{Model: "m", Entity: "x", Score: score})
		o2 := e.Apply(Decision{Model: "m", Entity: "x", Score: score})
		return o1.Final >= a && o1.Final <= b && o1.Final == o2.Final
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
