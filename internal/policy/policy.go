// Package policy bridges the model-application divide (§4.1): business
// rules and constraints are declared as policies that sit between a model's
// raw prediction and the action taken in the application domain. The engine
// continuously applies policies to model outputs, can override predictions,
// keeps a decision history for debugging and end-to-end accountability, and
// applies batches of actions transactionally with rollback on failure —
// the generic, extensible module of [28] (Dhalion) specialized to EGML.
package policy

import (
	"fmt"
	"sync"
	"time"
)

// Decision is one model output awaiting a policy pass before it becomes an
// action. Attrs carries application-domain context rules can reference.
type Decision struct {
	Model  string
	Entity string // what the decision is about (job id, customer id, ...)
	Score  float64
	Attrs  map[string]float64
}

// Outcome is the policy engine's verdict on a decision.
type Outcome struct {
	Decision   Decision
	Final      float64 // possibly adjusted score / value
	Overridden bool
	Denied     bool // the action must not be taken at all
	Policy     string
	Reason     string
	At         time.Time
}

// Rule is a single declarative policy. Rules apply in registration order;
// the first rule that fires determines Overridden/Denied attribution, but
// caps compose (a later cap still clamps an earlier override).
type Rule struct {
	// Name identifies the rule in outcomes and the history.
	Name string
	// Model restricts the rule to one model ("" applies to all).
	Model string

	// When, if set, gates the rule on the decision.
	When func(Decision) bool

	// CapMax clamps the final value from above when set.
	CapMax *float64
	// CapMin clamps the final value from below when set.
	CapMin *float64
	// OverrideTo replaces the value entirely when set (subject to When).
	OverrideTo *float64
	// Deny blocks the action entirely (e.g. regulatory constraints).
	Deny bool
	// Reason documents the business constraint for auditability.
	Reason string
}

// F is a convenience for building *float64 rule fields.
func F(v float64) *float64 { return &v }

// Engine applies policies and keeps the decision history.
type Engine struct {
	mu      sync.Mutex
	rules   []Rule
	history []Outcome
	maxHist int
}

// NewEngine returns an engine with a bounded history (default 4096).
func NewEngine() *Engine { return &Engine{maxHist: 4096} }

// AddRule registers a policy rule. Rules are user-defined and can encode
// "various business constraints on top of EGML workloads".
func (e *Engine) AddRule(r Rule) error {
	if r.Name == "" {
		return fmt.Errorf("policy: rule needs a name")
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	for _, existing := range e.rules {
		if existing.Name == r.Name {
			return fmt.Errorf("policy: duplicate rule %q", r.Name)
		}
	}
	e.rules = append(e.rules, r)
	return nil
}

// Rules lists the registered rule names in order.
func (e *Engine) Rules() []string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]string, len(e.rules))
	for i, r := range e.rules {
		out[i] = r.Name
	}
	return out
}

// Apply runs the decision through all applicable rules and records the
// outcome in the history.
func (e *Engine) Apply(d Decision) Outcome {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := Outcome{Decision: d, Final: d.Score, At: time.Now()}
	for _, r := range e.rules {
		if r.Model != "" && r.Model != d.Model {
			continue
		}
		if r.When != nil && !r.When(d) {
			continue
		}
		fired := false
		if r.Deny {
			out.Denied = true
			fired = true
		}
		if r.OverrideTo != nil && !out.Denied {
			out.Final = *r.OverrideTo
			fired = true
		}
		if r.CapMax != nil && out.Final > *r.CapMax {
			out.Final = *r.CapMax
			fired = true
		}
		if r.CapMin != nil && out.Final < *r.CapMin {
			out.Final = *r.CapMin
			fired = true
		}
		if fired {
			out.Overridden = out.Overridden || out.Final != d.Score || out.Denied
			if out.Policy == "" {
				out.Policy = r.Name
				out.Reason = r.Reason
			}
		}
		if out.Denied {
			break
		}
	}
	e.recordLocked(out)
	return out
}

func (e *Engine) recordLocked(o Outcome) {
	e.history = append(e.history, o)
	if len(e.history) > e.maxHist {
		e.history = e.history[len(e.history)-e.maxHist:]
	}
}

// History returns the most recent n outcomes (all when n <= 0), newest
// last — the state that lets operators "easily debug and explain the
// system's actions".
func (e *Engine) History(n int) []Outcome {
	e.mu.Lock()
	defer e.mu.Unlock()
	if n <= 0 || n > len(e.history) {
		n = len(e.history)
	}
	return append([]Outcome(nil), e.history[len(e.history)-n:]...)
}

// Overrides counts the historical outcomes where a policy changed or
// denied the model's prediction.
func (e *Engine) Overrides() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	n := 0
	for _, o := range e.history {
		if o.Overridden {
			n++
		}
	}
	return n
}

// Step is one transactional action: Do applies it, Undo compensates.
type Step struct {
	Name string
	Do   func() error
	Undo func() error
}

// Transact applies steps in order; if any step fails, the already-applied
// steps are undone in reverse order and the first error is returned
// (wrapped). This is the "actions happen in a transactional way, rolling
// back in case of failures" guarantee.
func Transact(steps []Step) error {
	for i, s := range steps {
		if err := s.Do(); err != nil {
			for j := i - 1; j >= 0; j-- {
				if steps[j].Undo != nil {
					// Compensation errors are unrecoverable by the engine;
					// surface the original failure regardless.
					_ = steps[j].Undo()
				}
			}
			return fmt.Errorf("policy: step %q failed (rolled back %d prior steps): %w", s.Name, i, err)
		}
	}
	return nil
}

// ApplyBatch runs a set of decisions through the engine and executes the
// resulting allowed actions transactionally: act is invoked per outcome,
// undo compensates. Denied outcomes are skipped (not errors).
func (e *Engine) ApplyBatch(decisions []Decision, act func(Outcome) error, undo func(Outcome) error) ([]Outcome, error) {
	outcomes := make([]Outcome, len(decisions))
	var steps []Step
	for i, d := range decisions {
		outcomes[i] = e.Apply(d)
		if outcomes[i].Denied {
			continue
		}
		o := outcomes[i]
		steps = append(steps, Step{
			Name: fmt.Sprintf("%s/%s", o.Decision.Model, o.Decision.Entity),
			Do:   func() error { return act(o) },
			Undo: func() error {
				if undo == nil {
					return nil
				}
				return undo(o)
			},
		})
	}
	if err := Transact(steps); err != nil {
		return outcomes, err
	}
	return outcomes, nil
}
