package opt

import (
	"repro/internal/sql"
)

// SplitConjuncts flattens nested ANDs into a conjunct list.
func SplitConjuncts(e sql.Expr) []sql.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*sql.Binary); ok && b.Op == "AND" {
		return append(SplitConjuncts(b.L), SplitConjuncts(b.R)...)
	}
	return []sql.Expr{e}
}

// AndAll rebuilds a conjunction from a conjunct list (nil for empty).
func AndAll(preds []sql.Expr) sql.Expr {
	var out sql.Expr
	for _, p := range preds {
		if out == nil {
			out = p
		} else {
			out = &sql.Binary{Op: "AND", L: out, R: p}
		}
	}
	return out
}

// RewriteExpr returns a copy of e with fn applied bottom-up: fn receives
// each copied node and may return a replacement. Subqueries are copied by
// reference (the optimizer never rewrites inside them).
func RewriteExpr(e sql.Expr, fn func(sql.Expr) sql.Expr) sql.Expr {
	if e == nil {
		return nil
	}
	var c sql.Expr
	switch x := e.(type) {
	case *sql.ColRef:
		cp := *x
		c = &cp
	case *sql.Lit:
		cp := *x
		c = &cp
	case *sql.Unary:
		c = &sql.Unary{Op: x.Op, X: RewriteExpr(x.X, fn)}
	case *sql.Binary:
		c = &sql.Binary{Op: x.Op, L: RewriteExpr(x.L, fn), R: RewriteExpr(x.R, fn)}
	case *sql.FuncCall:
		nf := &sql.FuncCall{Name: x.Name, Star: x.Star, Distinct: x.Distinct}
		for _, a := range x.Args {
			nf.Args = append(nf.Args, RewriteExpr(a, fn))
		}
		c = nf
	case *sql.Predict:
		np := &sql.Predict{Model: x.Model}
		for _, a := range x.Args {
			np.Args = append(np.Args, RewriteExpr(a, fn))
		}
		c = np
	case *sql.Between:
		c = &sql.Between{X: RewriteExpr(x.X, fn), Lo: RewriteExpr(x.Lo, fn), Hi: RewriteExpr(x.Hi, fn), Not: x.Not}
	case *sql.InList:
		ni := &sql.InList{X: RewriteExpr(x.X, fn), Sub: x.Sub, Not: x.Not}
		for _, v := range x.List {
			ni.List = append(ni.List, RewriteExpr(v, fn))
		}
		c = ni
	case *sql.Exists:
		c = &sql.Exists{Sub: x.Sub, Not: x.Not}
	case *sql.Subquery:
		c = &sql.Subquery{Sel: x.Sel}
	case *sql.Like:
		c = &sql.Like{X: RewriteExpr(x.X, fn), Pattern: RewriteExpr(x.Pattern, fn), Not: x.Not}
	case *sql.IsNull:
		c = &sql.IsNull{X: RewriteExpr(x.X, fn), Not: x.Not}
	case *sql.Case:
		nc := &sql.Case{Operand: RewriteExpr(x.Operand, fn), Else: RewriteExpr(x.Else, fn)}
		for _, w := range x.Whens {
			nc.Whens = append(nc.Whens, sql.When{Cond: RewriteExpr(w.Cond, fn), Then: RewriteExpr(w.Then, fn)})
		}
		c = nc
	case *sql.Interval:
		cp := *x
		c = &cp
	default:
		c = e
	}
	if out := fn(c); out != nil {
		return out
	}
	return c
}

// refsAny reports whether e references any of the given bare column names.
func refsAny(e sql.Expr, names map[string]bool) bool {
	found := false
	sql.WalkExprs(e, func(x sql.Expr) bool {
		if cr, ok := x.(*sql.ColRef); ok && cr.Table == "" && names[cr.Name] {
			found = true
		}
		return true
	})
	return found
}

// qualifiers returns the set of table qualifiers referenced by e; bare
// references contribute the empty string.
func qualifiers(e sql.Expr) map[string]bool {
	out := map[string]bool{}
	sql.WalkExprs(e, func(x sql.Expr) bool {
		if cr, ok := x.(*sql.ColRef); ok {
			out[cr.Table] = true
		}
		return true
	})
	return out
}

// hasSubquery reports whether e embeds any subquery.
func hasSubquery(e sql.Expr) bool {
	return len(sql.Subqueries(e)) > 0
}

// hasPredict reports whether e contains a PREDICT call.
func hasPredict(e sql.Expr) bool {
	found := false
	sql.WalkExprs(e, func(x sql.Expr) bool {
		if _, ok := x.(*sql.Predict); ok {
			found = true
		}
		return true
	})
	return found
}

// isAggFunc reports whether the function name is an aggregate.
func isAggFunc(name string) bool {
	switch name {
	case "count", "sum", "avg", "min", "max":
		return true
	}
	return false
}

// hasAggregate reports whether e contains an aggregate call.
func hasAggregate(e sql.Expr) bool {
	found := false
	sql.WalkExprs(e, func(x sql.Expr) bool {
		if fc, ok := x.(*sql.FuncCall); ok && isAggFunc(fc.Name) {
			found = true
		}
		return true
	})
	return found
}
