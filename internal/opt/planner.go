package opt

import (
	"fmt"

	"repro/internal/onnx"
	"repro/internal/sql"
)

// PlanSelect lowers a SELECT statement into a logical plan at the given
// optimization level. The input statement is never mutated.
func PlanSelect(s *sql.SelectStmt, models ModelProvider, catalog CatalogInfo, level Level) (*Plan, error) {
	p := &planner{models: models, catalog: catalog, level: level}
	p.report.Level = level
	root, err := p.plan(s)
	if err != nil {
		return nil, err
	}
	return &Plan{Root: root, Report: p.report}, nil
}

type planner struct {
	models  ModelProvider
	catalog CatalogInfo
	level   Level
	report  Report
	nameSeq int
}

func (p *planner) freshName(prefix string) string {
	p.nameSeq++
	return fmt.Sprintf("%s_%d", prefix, p.nameSeq)
}

// predictCall tracks one extracted PREDICT occurrence.
type predictCall struct {
	key     string
	call    *sql.Predict
	outName string
	node    *Predict
	uses    int
}

func (p *planner) plan(s *sql.SelectStmt) (Node, error) {
	// 1. FROM clause -> scans and joins.
	input, scans, err := p.planFrom(s.From)
	if err != nil {
		return nil, err
	}

	conjuncts := SplitConjuncts(s.Where)
	for _, c := range conjuncts {
		if hasSubquery(c) {
			return nil, fmt.Errorf("opt: subqueries in WHERE are not executable (parse-only support)")
		}
	}

	// 2. Extract PREDICT calls (UDF inlining) at LevelVectorized and above.
	var calls []*predictCall
	replace := func(e sql.Expr) sql.Expr { return e }
	if p.level >= LevelVectorized {
		byKey := map[string]*predictCall{}
		collect := func(e sql.Expr) {
			sql.WalkExprs(e, func(x sql.Expr) bool {
				if pr, ok := x.(*sql.Predict); ok {
					key := sql.FormatExpr(pr)
					if byKey[key] == nil {
						pc := &predictCall{key: key, call: pr, outName: p.freshName("predict")}
						byKey[key] = pc
						calls = append(calls, pc)
					}
					byKey[key].uses++
				}
				return true
			})
		}
		for _, it := range s.Items {
			collect(it.Expr)
		}
		for _, c := range conjuncts {
			collect(c)
		}
		collect(s.Having)
		for _, o := range s.OrderBy {
			collect(o.Expr)
		}
		replace = func(e sql.Expr) sql.Expr {
			if pr, ok := e.(*sql.Predict); ok {
				if pc := byKey[sql.FormatExpr(pr)]; pc != nil {
					return &sql.ColRef{Name: pc.outName}
				}
			}
			return nil
		}
		p.report.PredictsExtracted = len(calls)
	}

	rw := func(e sql.Expr) sql.Expr { return RewriteExpr(e, replace) }
	items := make([]sql.SelectItem, len(s.Items))
	for i, it := range s.Items {
		items[i] = sql.SelectItem{Star: it.Star, Alias: it.Alias, Expr: rw(it.Expr)}
	}
	var rwConjuncts []sql.Expr
	for _, c := range conjuncts {
		rwConjuncts = append(rwConjuncts, rw(c))
	}
	having := rw(s.Having)
	groupBy := make([]sql.Expr, len(s.GroupBy))
	for i, g := range s.GroupBy {
		groupBy[i] = rw(g)
	}
	orderBy := make([]SortKey, len(s.OrderBy))
	for i, o := range s.OrderBy {
		orderBy[i] = SortKey{Expr: rw(o.Expr), Desc: o.Desc}
	}

	predictOuts := map[string]bool{}
	for _, pc := range calls {
		predictOuts[pc.outName] = true
	}

	// 3. Classify WHERE conjuncts: pushable below inference vs residual.
	var pushed, residual []sql.Expr
	for _, c := range rwConjuncts {
		if refsAny(c, predictOuts) || hasPredict(c) {
			residual = append(residual, c)
			continue
		}
		if p.level >= LevelFull || len(calls) == 0 {
			// Push below inference (and into scans where possible).
			pushed = append(pushed, c)
			if len(calls) > 0 {
				p.report.PushedDown++
			}
		} else {
			residual = append(residual, c)
		}
	}

	// Push scan-local conjuncts into scans; equality conjuncts spanning
	// two join sides become join conditions (classic join-condition
	// extraction for comma joins); the rest filter above the joins.
	var joinResidual []sql.Expr
	for _, c := range pushed {
		if sc := p.scanFor(c, scans); sc != nil {
			sc.Filters = append(sc.Filters, stripQualifier(c, sc))
			continue
		}
		if attachJoinCondition(input, c) {
			continue
		}
		joinResidual = append(joinResidual, c)
	}
	if len(joinResidual) > 0 {
		input = &Filter{Input: input, Preds: joinResidual}
	}

	// 4. Stack Predict operators.
	for _, pc := range calls {
		graph, err := p.models.GraphFor(pc.call.Model)
		if err != nil {
			return nil, err
		}
		graph = graph.Clone()
		node := &Predict{
			Input:   input,
			Model:   pc.call.Model,
			Graph:   graph,
			Args:    pc.call.Args,
			OutName: pc.outName,
		}
		pc.node = node
		input = node
	}

	// 5. Cross-optimizations on the model itself.
	if p.level >= LevelFull {
		residual = p.fuseCompares(calls, residual, items, having, orderBy)
		p.compressModels(calls, scans)
	}

	if len(residual) > 0 {
		input = &Filter{Input: input, Preds: residual}
	}

	// 6. Aggregation.
	outNode := input
	needAgg := len(groupBy) > 0 || having != nil
	for _, it := range items {
		if !it.Star && hasAggregate(it.Expr) {
			needAgg = true
		}
	}
	if needAgg {
		agg := &Aggregate{Input: outNode, GroupBy: groupBy}
		for _, g := range groupBy {
			if cr, ok := g.(*sql.ColRef); ok {
				agg.GroupNames = append(agg.GroupNames, cr.Name)
			} else {
				agg.GroupNames = append(agg.GroupNames, p.freshName("group"))
			}
		}
		aggByKey := map[string]string{} // formatted call -> out name
		rewriteAggs := func(e sql.Expr) sql.Expr {
			return RewriteExpr(e, func(x sql.Expr) sql.Expr {
				fc, ok := x.(*sql.FuncCall)
				if !ok || !isAggFunc(fc.Name) {
					return nil
				}
				key := sql.FormatExpr(fc)
				name, seen := aggByKey[key]
				if !seen {
					name = p.freshName("agg")
					aggByKey[key] = name
					spec := AggSpec{Func: fc.Name, Star: fc.Star, Distinct: fc.Distinct, OutName: name}
					if len(fc.Args) > 0 {
						spec.Arg = fc.Args[0]
					}
					agg.Aggs = append(agg.Aggs, spec)
				}
				return &sql.ColRef{Name: name}
			})
		}
		// Also map group-by expressions to their output names.
		groupKeys := map[string]string{}
		for i, g := range groupBy {
			groupKeys[sql.FormatExpr(g)] = agg.GroupNames[i]
		}
		rewriteGroups := func(e sql.Expr) sql.Expr {
			return RewriteExpr(e, func(x sql.Expr) sql.Expr {
				if name, ok := groupKeys[sql.FormatExpr(x)]; ok {
					return &sql.ColRef{Name: name}
				}
				return nil
			})
		}
		for i := range items {
			if items[i].Star {
				return nil, fmt.Errorf("opt: SELECT * cannot be combined with aggregation")
			}
			items[i].Expr = rewriteGroups(rewriteAggs(items[i].Expr))
		}
		if having != nil {
			having = rewriteGroups(rewriteAggs(having))
		}
		for i := range orderBy {
			orderBy[i].Expr = rewriteGroups(rewriteAggs(orderBy[i].Expr))
		}
		outNode = agg
		if having != nil {
			outNode = &Filter{Input: outNode, Preds: SplitConjuncts(having)}
		}
	}

	// 7. Final projection.
	var star bool
	for _, it := range items {
		if it.Star {
			star = true
		}
	}
	if !star {
		proj := &Project{Input: outNode}
		used := map[string]bool{}
		for i, it := range items {
			name := it.Alias
			if name == "" {
				if cr, ok := it.Expr.(*sql.ColRef); ok {
					name = cr.Name
				} else {
					name = fmt.Sprintf("col_%d", i+1)
				}
			}
			if used[name] {
				name = p.freshName(name)
			}
			used[name] = true
			proj.Exprs = append(proj.Exprs, it.Expr)
			proj.Names = append(proj.Names, name)
		}
		// ORDER BY keys that match a projected expression or alias are
		// rewritten to reference the output column.
		byKey := map[string]string{}
		for i, e := range proj.Exprs {
			byKey[sql.FormatExpr(e)] = proj.Names[i]
		}
		for i := range orderBy {
			if name, ok := byKey[sql.FormatExpr(orderBy[i].Expr)]; ok {
				orderBy[i].Expr = &sql.ColRef{Name: name}
			}
		}
		outNode = proj
	}
	if s.Distinct {
		outNode = &Distinct{Input: outNode}
	}
	if len(orderBy) > 0 {
		outNode = &Sort{Input: outNode, Keys: orderBy}
	}
	if s.Limit >= 0 {
		outNode = &Limit{Input: outNode, N: s.Limit}
	}
	return outNode, nil
}

// planFrom builds the scan/join subtree and returns the list of scans for
// pushdown decisions.
func (p *planner) planFrom(from []sql.FromItem) (Node, []*Scan, error) {
	if len(from) == 0 {
		return nil, nil, nil // FROM-less SELECT: engine synthesizes one row
	}
	var node Node
	var scans []*Scan
	for i, f := range from {
		var item Node
		if f.Sub != nil {
			sub, err := p.plan(f.Sub)
			if err != nil {
				return nil, nil, err
			}
			item = sub
		} else {
			if _, err := p.catalog.TableColumns(f.Table); err != nil {
				return nil, nil, err
			}
			alias := f.Alias
			if alias == "" {
				alias = f.Table
			}
			sc := &Scan{Table: f.Table, Alias: alias, Version: f.Version}
			scans = append(scans, sc)
			item = sc
		}
		if i == 0 {
			node = item
			continue
		}
		jt := f.Join
		if jt == sql.JoinComma {
			jt = sql.JoinInner
		}
		node = &Join{Left: node, Right: item, Type: jt, On: f.On}
	}
	return node, scans, nil
}

// scanFor returns the single scan a conjunct can be pushed into, or nil.
func (p *planner) scanFor(c sql.Expr, scans []*Scan) *Scan {
	quals := qualifiers(c)
	if len(scans) == 1 {
		// Single table: bare and alias-qualified refs all resolve to it.
		for q := range quals {
			if q != "" && q != scans[0].Alias && q != scans[0].Table {
				return nil
			}
		}
		return scans[0]
	}
	if len(quals) != 1 {
		return nil
	}
	var q string
	for k := range quals {
		q = k
	}
	if q == "" {
		return nil // ambiguous bare reference with multiple tables
	}
	for _, sc := range scans {
		if sc.Alias == q || sc.Table == q {
			return sc
		}
	}
	return nil
}

// stripQualifier rewrites alias-qualified references into bare ones for
// evaluation directly against the scanned table.
func stripQualifier(c sql.Expr, sc *Scan) sql.Expr {
	return RewriteExpr(c, func(e sql.Expr) sql.Expr {
		if cr, ok := e.(*sql.ColRef); ok && (cr.Table == sc.Alias || cr.Table == sc.Table) {
			return &sql.ColRef{Name: cr.Name}
		}
		return nil
	})
}

// fuseCompares attaches threshold comparisons to Predict operators and,
// when the score is used nowhere else, pushes the threshold into the model
// (removing the sigmoid).
func (p *planner) fuseCompares(calls []*predictCall, residual []sql.Expr,
	items []sql.SelectItem, having sql.Expr, orderBy []SortKey) []sql.Expr {

	byOut := map[string]*predictCall{}
	for _, pc := range calls {
		byOut[pc.outName] = pc
	}
	countUses := func(name string) int {
		n := 0
		count := func(e sql.Expr) {
			sql.WalkExprs(e, func(x sql.Expr) bool {
				if cr, ok := x.(*sql.ColRef); ok && cr.Name == name {
					n++
				}
				return true
			})
		}
		for _, it := range items {
			count(it.Expr)
		}
		count(having)
		for _, o := range orderBy {
			count(o.Expr)
		}
		for _, c := range residual {
			count(c)
		}
		return n
	}

	var out []sql.Expr
	for _, c := range residual {
		pc, op, threshold, ok := matchThreshold(c, byOut)
		if !ok || pc.node.Compare != nil {
			out = append(out, c)
			continue
		}
		pc.node.Compare = &CompareSpec{Op: op, Threshold: threshold}
		// Push-up: only safe when the score column is not otherwise used
		// and the comparison is an inequality on a sigmoid output.
		if countUses(pc.outName) == 1 && (op == ">" || op == ">=" || op == "<" || op == "<=") {
			if raw, applied := onnx.PushUpThreshold(pc.node.Graph, threshold); applied {
				pc.node.Compare.Threshold = raw
				p.report.PushedUp = true
			}
		}
	}
	return out
}

// matchThreshold recognizes `predict_i op literal` (or the mirrored form).
func matchThreshold(c sql.Expr, byOut map[string]*predictCall) (*predictCall, string, float64, bool) {
	b, ok := c.(*sql.Binary)
	if !ok {
		return nil, "", 0, false
	}
	switch b.Op {
	case "=", "<>", "<", "<=", ">", ">=":
	default:
		return nil, "", 0, false
	}
	if pc, v, ok := colAndLit(b.L, b.R, byOut); ok {
		return pc, b.Op, v, true
	}
	if pc, v, ok := colAndLit(b.R, b.L, byOut); ok {
		return pc, mirrorOp(b.Op), v, true
	}
	return nil, "", 0, false
}

func colAndLit(l, r sql.Expr, byOut map[string]*predictCall) (*predictCall, float64, bool) {
	cr, ok := l.(*sql.ColRef)
	if !ok {
		return nil, 0, false
	}
	pc, ok := byOut[cr.Name]
	if !ok {
		return nil, 0, false
	}
	lit, ok := r.(*sql.Lit)
	if !ok {
		return nil, 0, false
	}
	switch lit.Kind {
	case sql.LitInt:
		return pc, float64(lit.I), true
	case sql.LitFloat:
		return pc, lit.F, true
	}
	return nil, 0, false
}

func mirrorOp(op string) string {
	switch op {
	case "<":
		return ">"
	case "<=":
		return ">="
	case ">":
		return "<"
	case ">=":
		return "<="
	}
	return op
}

// compressModels applies sparsity pruning and stats-driven compression to
// every extracted model whose input is a base-table scan.
func (p *planner) compressModels(calls []*predictCall, scans []*Scan) {
	for _, pc := range calls {
		// Arguments are positional against the graph's declared inputs;
		// without that correspondence we cannot safely narrow them.
		origInputs := pc.node.Graph.InputNames()
		if len(pc.node.Args) != len(origInputs) {
			continue
		}
		// Walk down to the scan feeding this predict (through other
		// predicts and filters only) for its statistics. Time-travel scans
		// skip stats-driven compression: current statistics need not hold
		// for historical snapshots.
		sc := baseScan(pc.node.Input)
		var stats onnx.Stats
		if sc != nil && p.catalog != nil && sc.Version < 0 {
			stats = p.catalog.TableStats(sc.Table)
		}
		var res onnx.CompressResult
		if stats != nil {
			res = onnx.CompressWithStats(pc.node.Graph, stats)
		} else {
			res.Prune = onnx.PruneUnusedFeatures(pc.node.Graph)
		}
		p.report.TreeNodesBefore += res.NodesBefore
		p.report.TreeNodesAfter += res.NodesAfter
		p.report.CategoriesDropped += res.CategoriesDropped
		p.report.PrunedInputs = append(p.report.PrunedInputs, res.Prune.DroppedInputs...)

		// Narrow the operator's argument list to the surviving inputs
		// (projection pruning of feature columns).
		surviving := map[string]bool{}
		for _, name := range pc.node.Graph.InputNames() {
			surviving[name] = true
		}
		var kept []sql.Expr
		for i, name := range origInputs {
			if surviving[name] {
				kept = append(kept, pc.node.Args[i])
			}
		}
		pc.node.Args = kept
	}
}

// attachJoinCondition tries to attach an equality conjunct as the ON
// condition of the lowest join whose two sides cover the conjunct's
// qualifiers. Returns true when attached.
func attachJoinCondition(root Node, c sql.Expr) bool {
	b, ok := c.(*sql.Binary)
	if !ok || b.Op != "=" {
		return false
	}
	quals := qualifiers(c)
	if len(quals) != 2 || quals[""] {
		return false
	}
	var want [2]string
	i := 0
	for q := range quals {
		want[i] = q
		i++
	}
	// Walk the left-deep join chain bottom-up: attach at the lowest join
	// where one qualifier is on the right side and the other anywhere on
	// the left.
	var attach func(n Node) bool
	covers := func(n Node, q string) bool {
		found := false
		var walk func(Node)
		walk = func(x Node) {
			switch t := x.(type) {
			case *Scan:
				if t.Alias == q || t.Table == q {
					found = true
				}
			case *Join:
				walk(t.Left)
				walk(t.Right)
			case *Filter:
				walk(t.Input)
			case *Predict:
				walk(t.Input)
			}
		}
		walk(n)
		return found
	}
	attach = func(n Node) bool {
		j, ok := n.(*Join)
		if !ok {
			return false
		}
		// Prefer the deepest applicable join.
		if attach(j.Left) {
			return true
		}
		l0, r0 := covers(j.Left, want[0]), covers(j.Right, want[1])
		l1, r1 := covers(j.Left, want[1]), covers(j.Right, want[0])
		if (l0 && r0) || (l1 && r1) {
			if j.On == nil {
				j.On = c
			} else {
				j.On = &sql.Binary{Op: "AND", L: j.On, R: c}
			}
			return true
		}
		return false
	}
	return attach(root)
}

// baseScan walks through Predict/Filter nodes to the underlying scan.
func baseScan(n Node) *Scan {
	for {
		switch x := n.(type) {
		case *Scan:
			return x
		case *Predict:
			n = x.Input
		case *Filter:
			n = x.Input
		default:
			return nil
		}
	}
}
