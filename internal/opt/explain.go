package opt

import (
	"fmt"
	"strings"

	"repro/internal/sql"
)

// FormatPlan renders a logical plan as an indented tree (EXPLAIN output).
func FormatPlan(root Node) string {
	var b strings.Builder
	writePlan(&b, root, 0)
	return b.String()
}

func writePlan(b *strings.Builder, n Node, depth int) {
	indent := strings.Repeat("  ", depth)
	switch x := n.(type) {
	case nil:
		fmt.Fprintf(b, "%sValues(1 row)\n", indent)
	case *Scan:
		fmt.Fprintf(b, "%sScan(%s", indent, x.Table)
		if x.Alias != "" && x.Alias != x.Table {
			fmt.Fprintf(b, " AS %s", x.Alias)
		}
		if x.Version >= 0 {
			fmt.Fprintf(b, " VERSION %d", x.Version)
		}
		b.WriteString(")")
		if len(x.Filters) > 0 {
			fmt.Fprintf(b, " filter=%s", sql.FormatExpr(AndAll(x.Filters)))
		}
		b.WriteString("\n")
	case *Filter:
		fmt.Fprintf(b, "%sFilter(%s)\n", indent, sql.FormatExpr(AndAll(x.Preds)))
		writePlan(b, x.Input, depth+1)
	case *Predict:
		fmt.Fprintf(b, "%sPredict(model=%s out=%s inputs=%d", indent, x.Model, x.OutName, len(x.Args))
		if x.Compare != nil {
			fmt.Fprintf(b, " fused-compare=%s%g", x.Compare.Op, x.Compare.Threshold)
		}
		b.WriteString(")\n")
		writePlan(b, x.Input, depth+1)
	case *Join:
		kind := "InnerJoin"
		if x.Type == sql.JoinLeft {
			kind = "LeftJoin"
		}
		cond := "<cross>"
		if x.On != nil {
			cond = sql.FormatExpr(x.On)
		}
		fmt.Fprintf(b, "%s%s(%s)\n", indent, kind, cond)
		writePlan(b, x.Left, depth+1)
		writePlan(b, x.Right, depth+1)
	case *Aggregate:
		var aggs []string
		for _, a := range x.Aggs {
			spec := a.Func
			if a.Star {
				spec += "(*)"
			} else if a.Arg != nil {
				spec += "(" + sql.FormatExpr(a.Arg) + ")"
			}
			aggs = append(aggs, spec+" AS "+a.OutName)
		}
		var groups []string
		for _, g := range x.GroupBy {
			groups = append(groups, sql.FormatExpr(g))
		}
		fmt.Fprintf(b, "%sAggregate(group=[%s] aggs=[%s])\n",
			indent, strings.Join(groups, ", "), strings.Join(aggs, ", "))
		writePlan(b, x.Input, depth+1)
	case *Project:
		var items []string
		for i, e := range x.Exprs {
			items = append(items, sql.FormatExpr(e)+" AS "+x.Names[i])
		}
		fmt.Fprintf(b, "%sProject(%s)\n", indent, strings.Join(items, ", "))
		writePlan(b, x.Input, depth+1)
	case *Distinct:
		fmt.Fprintf(b, "%sDistinct\n", indent)
		writePlan(b, x.Input, depth+1)
	case *Sort:
		var keys []string
		for _, k := range x.Keys {
			s := sql.FormatExpr(k.Expr)
			if k.Desc {
				s += " DESC"
			}
			keys = append(keys, s)
		}
		fmt.Fprintf(b, "%sSort(%s)\n", indent, strings.Join(keys, ", "))
		writePlan(b, x.Input, depth+1)
	case *Limit:
		fmt.Fprintf(b, "%sLimit(%d)\n", indent, x.N)
		writePlan(b, x.Input, depth+1)
	default:
		fmt.Fprintf(b, "%s%T\n", indent, n)
	}
}
