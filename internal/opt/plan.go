// Package opt is the query + cross optimizer: it lowers a parsed SELECT into
// a logical plan and applies both classical relational rules (predicate
// pushdown, projection pruning) and the paper's cross-optimizations between
// SQL and ML (§4.1): UDF inlining of PREDICT into a vectorized operator,
// predicate push-down below inference, predicate push-up into the model,
// model-sparsity input pruning, and stats-driven model compression.
//
// The optimizer manipulates the sql AST and onnx graphs only; physical
// execution lives in internal/engine, which interprets the plan.
package opt

import (
	"fmt"
	"strings"

	"repro/internal/onnx"
	"repro/internal/sql"
)

// Level selects how much of the optimizer is enabled; the levels correspond
// to the Figure-4 configurations.
type Level int

// Optimization levels.
const (
	// LevelUDF disables all ML-aware planning: PREDICT calls are evaluated
	// row-at-a-time inside scalar expressions, like an external UDF.
	LevelUDF Level = iota
	// LevelVectorized extracts PREDICT into a vectorized operator
	// (UDF inlining), single-threaded.
	LevelVectorized
	// LevelParallel adds partitioned parallel execution of scans, filters
	// and inference (the in-DBMS "SONNX" configuration).
	LevelParallel
	// LevelFull adds the cross-optimizations: predicate push-down below
	// inference, predicate push-up into the model, input pruning from
	// model sparsity, and model compression from table statistics
	// ("SONNX-ext").
	LevelFull
)

func (l Level) String() string {
	switch l {
	case LevelUDF:
		return "udf"
	case LevelVectorized:
		return "vectorized"
	case LevelParallel:
		return "parallel"
	case LevelFull:
		return "full"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// ModelProvider resolves deployed model names to graphs. Implemented by
// core.ModelRegistry.
type ModelProvider interface {
	GraphFor(name string) (*onnx.Graph, error)
}

// CatalogInfo exposes the table metadata the optimizer needs. Implemented
// by engine.DB.
type CatalogInfo interface {
	// TableColumns returns the column names of a table, or an error if the
	// table does not exist.
	TableColumns(table string) ([]string, error)
	// TableStats returns per-column statistics for compression; may return
	// nil when statistics are unavailable.
	TableStats(table string) onnx.Stats
}

// Node is a logical plan operator.
type Node interface{ node() }

// Scan reads a base table. Filters holds conjuncts pushed down to the
// scan; Version >= 0 requests a time-travel read of a retained snapshot.
type Scan struct {
	Table   string
	Alias   string // qualifier used in the query ("" when none)
	Filters []sql.Expr
	Version int64 // -1 means current
}

// Filter applies residual conjuncts.
type Filter struct {
	Input Node
	Preds []sql.Expr
}

// CompareSpec fuses a threshold comparison into a Predict operator: only
// rows whose score satisfies (score Op Threshold) survive.
type CompareSpec struct {
	Op        string // one of = <> < <= > >=
	Threshold float64
}

// Predict scores rows with a deployed model, appending the score as column
// OutName. Args must be column references after planning.
type Predict struct {
	Input   Node
	Model   string
	Graph   *onnx.Graph // possibly rewritten by cross-optimizations
	Args    []sql.Expr
	OutName string
	// Compare, when non-nil, fuses a threshold filter into the operator.
	Compare *CompareSpec
	// RowMode forces row-at-a-time evaluation (LevelUDF).
	RowMode bool
}

// Join is an equi-join with an ON condition.
type Join struct {
	Left, Right Node
	Type        sql.JoinType
	On          sql.Expr
}

// AggSpec is one aggregate computation.
type AggSpec struct {
	Func     string // count, sum, avg, min, max
	Star     bool
	Distinct bool
	Arg      sql.Expr // nil for count(*)
	OutName  string
}

// Aggregate groups by GroupBy and computes Aggs. GroupNames name the
// group-by output columns.
type Aggregate struct {
	Input      Node
	GroupBy    []sql.Expr
	GroupNames []string
	Aggs       []AggSpec
}

// Project computes the final output expressions.
type Project struct {
	Input Node
	Exprs []sql.Expr
	Names []string
}

// Distinct removes duplicate rows.
type Distinct struct{ Input Node }

// SortKey is one ORDER BY key over the input schema.
type SortKey struct {
	Expr sql.Expr
	Desc bool
}

// Sort orders rows.
type Sort struct {
	Input Node
	Keys  []SortKey
}

// Limit truncates to N rows.
type Limit struct {
	Input Node
	N     int64
}

func (*Scan) node()      {}
func (*Filter) node()    {}
func (*Predict) node()   {}
func (*Join) node()      {}
func (*Aggregate) node() {}
func (*Project) node()   {}
func (*Distinct) node()  {}
func (*Sort) node()      {}
func (*Limit) node()     {}

// Report records which optimizations fired, for ablation benches and the
// EXPLAIN-style output in examples.
type Report struct {
	Level             Level
	PredictsExtracted int
	PushedDown        int // conjuncts pushed below inference
	PushedUp          bool
	PrunedInputs      []string // input columns dropped from the model
	TreeNodesBefore   int
	TreeNodesAfter    int
	CategoriesDropped int
	// Parallelism is the morsel worker cap the executor resolved for this
	// plan (1 below LevelParallel); filled in by the engine at execution
	// time so EXPLAIN surfaces the effective degree.
	Parallelism int
}

// String renders a compact summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "level=%s predicts=%d pushdown=%d", r.Level, r.PredictsExtracted, r.PushedDown)
	if r.Parallelism > 0 {
		fmt.Fprintf(&b, " workers=%d", r.Parallelism)
	}
	if r.PushedUp {
		b.WriteString(" pushup")
	}
	if len(r.PrunedInputs) > 0 {
		fmt.Fprintf(&b, " pruned=%v", r.PrunedInputs)
	}
	if r.TreeNodesBefore > 0 {
		fmt.Fprintf(&b, " treenodes=%d->%d", r.TreeNodesBefore, r.TreeNodesAfter)
	}
	return b.String()
}

// Plan is the output of the optimizer.
type Plan struct {
	Root   Node
	Report Report
}
