package opt

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ml"
	"repro/internal/onnx"
	"repro/internal/sql"
)

type fakeModels map[string]*onnx.Graph

func (f fakeModels) GraphFor(name string) (*onnx.Graph, error) {
	g, ok := f[name]
	if !ok {
		return nil, fmt.Errorf("unknown model %q", name)
	}
	return g, nil
}

type fakeCatalog struct {
	cols  map[string][]string
	stats map[string]onnx.Stats
}

func (c *fakeCatalog) TableColumns(table string) ([]string, error) {
	cols, ok := c.cols[table]
	if !ok {
		return nil, fmt.Errorf("unknown table %q", table)
	}
	return cols, nil
}

func (c *fakeCatalog) TableStats(table string) onnx.Stats { return c.stats[table] }

func testGraph(t *testing.T) *onnx.Graph {
	t.Helper()
	r := ml.NewRand(5)
	n := 300
	ages := make([]float64, n)
	regions := make([]string, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		ages[i] = 20 + r.Float64()*50
		regions[i] = []string{"us", "eu"}[r.Intn(2)]
		if ages[i] > 45 {
			y[i] = 1
		}
	}
	f := ml.NewFrame().AddNumeric("age", ages).AddCategorical("region", regions)
	p := ml.NewPipeline("m",
		ml.NewFeaturizer().With("age", &ml.StandardScaler{}).With("region", &ml.OneHotEncoder{}),
		&ml.LogisticRegression{Epochs: 30})
	if err := p.Fit(f, y); err != nil {
		t.Fatal(err)
	}
	g, err := onnx.Export(p)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func plan(t *testing.T, q string, models ModelProvider, cat CatalogInfo, level Level) *Plan {
	t.Helper()
	stmt, err := sql.ParseOne(q)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := PlanSelect(stmt.(*sql.SelectStmt), models, cat, level)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func defaultCatalog() *fakeCatalog {
	return &fakeCatalog{cols: map[string][]string{
		"customers": {"id", "age", "region"},
		"orders":    {"id", "cust_id", "amount"},
	}}
}

func TestPlanSimpleSelect(t *testing.T) {
	pl := plan(t, "SELECT id FROM customers WHERE age > 30", nil, defaultCatalog(), LevelFull)
	proj, ok := pl.Root.(*Project)
	if !ok {
		t.Fatalf("root is %T", pl.Root)
	}
	sc, ok := proj.Input.(*Scan)
	if !ok {
		t.Fatalf("input is %T, want Scan with pushed filter", proj.Input)
	}
	if len(sc.Filters) != 1 {
		t.Errorf("pushed filters = %d", len(sc.Filters))
	}
}

func TestPlanPredictExtraction(t *testing.T) {
	g := testGraph(t)
	models := fakeModels{"m": g}
	q := "SELECT id, PREDICT(m, age, region) AS s FROM customers WHERE PREDICT(m, age, region) > 0.5 AND age > 30"

	// LevelUDF: no extraction.
	pl := plan(t, q, models, defaultCatalog(), LevelUDF)
	if pl.Report.PredictsExtracted != 0 {
		t.Errorf("UDF level extracted %d predicts", pl.Report.PredictsExtracted)
	}

	// LevelVectorized: extraction, no pushdown.
	pl = plan(t, q, models, defaultCatalog(), LevelVectorized)
	if pl.Report.PredictsExtracted != 1 {
		t.Errorf("extracted = %d, want 1 (deduplicated)", pl.Report.PredictsExtracted)
	}
	if pl.Report.PushedDown != 0 {
		t.Errorf("vectorized level pushed down %d", pl.Report.PushedDown)
	}

	// LevelFull: pushdown fires; push-up must NOT fire (score projected).
	pl = plan(t, q, models, defaultCatalog(), LevelFull)
	if pl.Report.PushedDown != 1 {
		t.Errorf("pushdown = %d, want 1", pl.Report.PushedDown)
	}
	if pl.Report.PushedUp {
		t.Error("push-up must not fire when the score is projected")
	}
}

func TestPlanPushUpOnlyWhenScoreUnused(t *testing.T) {
	g := testGraph(t)
	models := fakeModels{"m": g}
	q := "SELECT id FROM customers WHERE PREDICT(m, age, region) >= 0.8"
	pl := plan(t, q, models, defaultCatalog(), LevelFull)
	if !pl.Report.PushedUp {
		t.Error("push-up should fire")
	}
	// The predict node's graph must have lost its sigmoid.
	var pn *Predict
	var walk func(n Node)
	walk = func(n Node) {
		switch x := n.(type) {
		case *Predict:
			pn = x
			walk(x.Input)
		case *Project:
			walk(x.Input)
		case *Filter:
			walk(x.Input)
		case *Limit:
			walk(x.Input)
		case *Sort:
			walk(x.Input)
		}
	}
	walk(pl.Root)
	if pn == nil {
		t.Fatal("no Predict node in plan")
	}
	if pn.Graph.Model.PostSigmoid {
		t.Error("sigmoid not removed by push-up")
	}
	if pn.Compare == nil {
		t.Error("compare not fused")
	}
}

func TestPlanCompressionUsesStats(t *testing.T) {
	g := testGraph(t)
	models := fakeModels{"m": g}
	cat := defaultCatalog()
	cat.stats = map[string]onnx.Stats{
		"customers": {
			"age":    {HasRange: true, Min: 20, Max: 70},
			"region": {Categories: map[string]bool{"us": true}},
		},
	}
	q := "SELECT PREDICT(m, age, region) AS s FROM customers"
	pl := plan(t, q, models, cat, LevelFull)
	_ = pl
	// The "eu" category is absent from stats; with a linear model it may
	// only disappear if its coefficient became prunable. What must always
	// hold: the plan is valid and the graph validates.
	var pn *Predict
	var walk func(n Node)
	walk = func(n Node) {
		switch x := n.(type) {
		case *Predict:
			pn = x
		case *Project:
			walk(x.Input)
		case *Filter:
			walk(x.Input)
		}
	}
	walk(pl.Root)
	if pn == nil {
		t.Fatal("no predict node")
	}
	if err := pn.Graph.Validate(); err != nil {
		t.Fatalf("compressed graph invalid: %v", err)
	}
	if len(pn.Args) != len(pn.Graph.Inputs) {
		t.Errorf("args (%d) out of sync with graph inputs (%d)", len(pn.Args), len(pn.Graph.Inputs))
	}
}

func TestPlanAggregateRewrite(t *testing.T) {
	pl := plan(t, `SELECT region, count(*) AS n, sum(age) AS s FROM customers
		GROUP BY region HAVING count(*) > 1 ORDER BY s DESC LIMIT 5`,
		nil, defaultCatalog(), LevelFull)
	lim, ok := pl.Root.(*Limit)
	if !ok {
		t.Fatalf("root %T, want Limit", pl.Root)
	}
	srt, ok := lim.Input.(*Sort)
	if !ok {
		t.Fatalf("below limit %T, want Sort", lim.Input)
	}
	proj, ok := srt.Input.(*Project)
	if !ok {
		t.Fatalf("below sort %T, want Project", srt.Input)
	}
	flt, ok := proj.Input.(*Filter)
	if !ok {
		t.Fatalf("below project %T, want Filter (HAVING)", proj.Input)
	}
	agg, ok := flt.Input.(*Aggregate)
	if !ok {
		t.Fatalf("below having %T, want Aggregate", flt.Input)
	}
	if len(agg.Aggs) != 2 {
		t.Errorf("aggs = %d, want 2 (count deduplicated with having)", len(agg.Aggs))
	}
	if agg.GroupNames[0] != "region" {
		t.Errorf("group names = %v", agg.GroupNames)
	}
}

func TestPlanErrors(t *testing.T) {
	cat := defaultCatalog()
	for _, q := range []string{
		"SELECT id FROM ghost",
		"SELECT id FROM customers WHERE id IN (SELECT id FROM orders)",
		"SELECT *, count(*) FROM customers GROUP BY id",
		"SELECT PREDICT(nope, age) FROM customers",
	} {
		stmt, err := sql.ParseOne(q)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := PlanSelect(stmt.(*sql.SelectStmt), fakeModels{}, cat, LevelFull); err == nil {
			t.Errorf("expected planning error for %q", q)
		}
	}
}

func TestSplitAndAll(t *testing.T) {
	stmt, _ := sql.ParseOne("SELECT 1 FROM customers WHERE a = 1 AND b = 2 AND c = 3")
	where := stmt.(*sql.SelectStmt).Where
	parts := SplitConjuncts(where)
	if len(parts) != 3 {
		t.Fatalf("conjuncts = %d", len(parts))
	}
	back := AndAll(parts)
	if sql.FormatExpr(back) != sql.FormatExpr(where) {
		t.Errorf("AndAll(SplitConjuncts(x)) != x: %s", sql.FormatExpr(back))
	}
	if AndAll(nil) != nil {
		t.Error("AndAll(nil) should be nil")
	}
}

func TestRewriteExprDoesNotMutate(t *testing.T) {
	stmt, _ := sql.ParseOne("SELECT a + b * 2 FROM customers")
	orig := stmt.(*sql.SelectStmt).Items[0].Expr
	before := sql.FormatExpr(orig)
	out := RewriteExpr(orig, func(e sql.Expr) sql.Expr {
		if cr, ok := e.(*sql.ColRef); ok && cr.Name == "a" {
			return &sql.ColRef{Name: "z"}
		}
		return nil
	})
	if sql.FormatExpr(orig) != before {
		t.Error("RewriteExpr mutated its input")
	}
	if sql.FormatExpr(out) == before {
		t.Error("RewriteExpr did not apply the transform")
	}
}

func TestJoinConditionScanAssignment(t *testing.T) {
	pl := plan(t, `SELECT c.id FROM customers c JOIN orders o ON c.id = o.cust_id
		WHERE c.age > 30 AND o.amount > 100`, nil, defaultCatalog(), LevelFull)
	// Both single-table conjuncts should be pushed into their scans.
	var scanFilters int
	var walk func(n Node)
	walk = func(n Node) {
		switch x := n.(type) {
		case *Scan:
			scanFilters += len(x.Filters)
		case *Project:
			walk(x.Input)
		case *Filter:
			walk(x.Input)
		case *Join:
			walk(x.Left)
			walk(x.Right)
		}
	}
	walk(pl.Root)
	if scanFilters != 2 {
		t.Errorf("scan filters = %d, want 2", scanFilters)
	}
}

func TestLevelString(t *testing.T) {
	for l, want := range map[Level]string{
		LevelUDF: "udf", LevelVectorized: "vectorized",
		LevelParallel: "parallel", LevelFull: "full",
	} {
		if l.String() != want {
			t.Errorf("Level(%d).String() = %q", int(l), l.String())
		}
	}
}

func TestFormatPlan(t *testing.T) {
	g := testGraph(t)
	pl := plan(t, `SELECT region, count(*) AS n FROM customers
		WHERE age > 30 AND PREDICT(m, age, region) >= 0.8
		GROUP BY region ORDER BY n DESC LIMIT 3`,
		fakeModels{"m": g}, defaultCatalog(), LevelFull)
	out := FormatPlan(pl.Root)
	for _, want := range []string{"Limit(3)", "Sort(", "Aggregate(", "Predict(model=m", "fused-compare", "Scan(customers"} {
		if !strings.Contains(out, want) {
			t.Errorf("plan output missing %q:\n%s", want, out)
		}
	}
	// The pushed-down filter lives on the scan, below the predict.
	if !strings.Contains(out, "filter=") {
		t.Errorf("pushed filter missing:\n%s", out)
	}
}
