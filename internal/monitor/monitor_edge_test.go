package monitor

import (
	"math"
	"testing"
)

// TestPSIBetweenEdgeCases table-tests the canary-gate comparison across the
// degenerate inputs the old PSI path mishandled: empty and short reference
// windows, single-valued (one-bin) distributions, and NaN scores. Every
// case must produce a defined status or an explicit error — never NaN.
func TestPSIBetweenEdgeCases(t *testing.T) {
	uniform := func(n int, lo, hi float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = lo + (hi-lo)*float64(i)/float64(n)
		}
		return out
	}
	repeat := func(n int, v float64) []float64 {
		out := make([]float64, n)
		for i := range out {
			out[i] = v
		}
		return out
	}

	cases := []struct {
		name       string
		ref, cur   []float64
		wantErr    bool
		wantStatus DriftStatus
		maxPSI     float64 // upper bound check when not erroring
		minPSI     float64
	}{
		{name: "empty reference", ref: nil, cur: uniform(100, 0, 1), wantErr: true},
		{name: "empty current", ref: uniform(100, 0, 1), cur: nil, wantErr: true},
		{name: "short reference identical", ref: uniform(5, 0, 1), cur: uniform(5, 0, 1),
			wantStatus: Stable, maxPSI: 0.05},
		{name: "single score reference", ref: []float64{0.5}, cur: []float64{0.5},
			wantStatus: Stable, maxPSI: 0.01},
		{name: "single-bin distribution stable", ref: repeat(200, 0.7), cur: repeat(50, 0.7),
			wantStatus: Stable, maxPSI: 0.01},
		{name: "single-bin distribution shifted down", ref: repeat(200, 0.7), cur: repeat(50, 0.1),
			wantStatus: Severe, minPSI: 0.25},
		{name: "identical distributions", ref: uniform(1000, 0, 1), cur: uniform(1000, 0, 1),
			wantStatus: Stable, maxPSI: 0.05},
		{name: "clear drift", ref: uniform(1000, 0, 0.5), cur: uniform(1000, 0.5, 1),
			wantStatus: Severe, minPSI: 0.25},
		{name: "nan scores stay finite", ref: uniform(100, 0, 1),
			cur: []float64{math.NaN(), math.NaN(), 0.5, 0.6}, wantStatus: Severe, minPSI: 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			psi, status, err := PSIBetween(tc.ref, tc.cur)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("want error, got psi=%v status=%v", psi, status)
				}
				return
			}
			if err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if math.IsNaN(psi) || math.IsInf(psi, 0) {
				t.Fatalf("non-finite PSI %v", psi)
			}
			if status != tc.wantStatus {
				t.Fatalf("status %v (psi %v), want %v", status, psi, tc.wantStatus)
			}
			if tc.maxPSI > 0 && psi > tc.maxPSI {
				t.Fatalf("psi %v above bound %v", psi, tc.maxPSI)
			}
			if psi < tc.minPSI {
				t.Fatalf("psi %v below bound %v", psi, tc.minPSI)
			}
		})
	}
}

// TestPSIOfEmptyBaseline pins the division-by-zero guard: a hand-built
// Total-0 snapshot must error, not return NaN.
func TestPSIOfEmptyBaseline(t *testing.T) {
	empty := Snapshot{Edges: []float64{math.Inf(-1), math.Inf(1)}, Counts: []int{0}}
	if psi, err := psiOf(empty, []float64{0.5}); err == nil || psi != 0 {
		t.Fatalf("empty baseline: psi=%v err=%v, want 0 and error", psi, err)
	}
}

// TestMonitorSingleBinWindow drives the full ScoreMonitor path with a
// constant baseline: PSI must stay finite and the status defined.
func TestMonitorSingleBinWindow(t *testing.T) {
	base := make([]float64, 100)
	for i := range base {
		base[i] = 0.42
	}
	m, err := NewScoreMonitor("const", base, 500)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		m.Observe(0.42)
	}
	psi, err := m.PSI()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(psi) {
		t.Fatal("NaN PSI from single-bin window")
	}
	if status := StatusOf(psi); status != Stable {
		t.Fatalf("status %v (psi %v), want stable", status, psi)
	}
}
