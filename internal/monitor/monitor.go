// Package monitor implements model monitoring — the Figure-3 capability the
// paper finds missing from most third-party stacks and a prerequisite for
// "as the underlying data evolves models need to be updated". A
// ScoreMonitor snapshots the score distribution at deployment time and
// computes Population Stability Index (PSI) drift against it in production;
// alerts feed the policy engine or retraining automation.
package monitor

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// DefaultBins is the histogram resolution.
const DefaultBins = 10

// DriftStatus classifies a PSI value using the conventional industry
// thresholds.
type DriftStatus int

// Drift statuses.
const (
	Stable   DriftStatus = iota // PSI < 0.1
	Moderate                    // 0.1 <= PSI < 0.25
	Severe                      // PSI >= 0.25
)

// StatusOf classifies a PSI value with the conventional thresholds —
// shared by Check and external exporters (e.g. the serving layer's
// /metrics endpoint) so the cutoffs live in one place.
func StatusOf(psi float64) DriftStatus {
	switch {
	case psi >= 0.25:
		return Severe
	case psi >= 0.1:
		return Moderate
	default:
		return Stable
	}
}

func (s DriftStatus) String() string {
	switch s {
	case Stable:
		return "stable"
	case Moderate:
		return "moderate-drift"
	case Severe:
		return "severe-drift"
	default:
		return fmt.Sprintf("DriftStatus(%d)", int(s))
	}
}

// Snapshot is a binned score distribution.
type Snapshot struct {
	Edges  []float64 // len bins+1, quantile edges of the baseline
	Counts []int
	Total  int
}

// ScoreMonitor tracks one deployed model's score distribution.
type ScoreMonitor struct {
	Model string

	mu       sync.Mutex
	baseline Snapshot
	window   []float64
	windowN  int // max window size
	alerts   []Alert
}

// Alert records a drift detection.
type Alert struct {
	At     time.Time
	Model  string
	PSI    float64
	Status DriftStatus
}

// NewScoreMonitor builds a monitor from baseline scores (typically the
// validation-set scores at deployment time). windowN bounds the sliding
// production window (default 1000).
func NewScoreMonitor(model string, baseline []float64, windowN int) (*ScoreMonitor, error) {
	if len(baseline) < DefaultBins {
		return nil, fmt.Errorf("monitor: need at least %d baseline scores, got %d", DefaultBins, len(baseline))
	}
	if windowN <= 0 {
		windowN = 1000
	}
	m := &ScoreMonitor{Model: model, windowN: windowN}
	m.baseline = binByQuantiles(baseline, DefaultBins)
	return m, nil
}

// binByQuantiles builds bins with (approximately) equal baseline mass.
// Degenerate inputs stay well-defined: a single-valued (or otherwise
// low-cardinality) distribution yields duplicate interior edges, which
// binOf resolves deterministically, and an empty input yields a Total-0
// snapshot that psiOf rejects with an error instead of dividing by zero.
func binByQuantiles(scores []float64, bins int) Snapshot {
	if bins < 1 {
		bins = 1
	}
	sorted := append([]float64(nil), scores...)
	sort.Float64s(sorted)
	edges := make([]float64, bins+1)
	edges[0] = math.Inf(-1)
	edges[bins] = math.Inf(1)
	for b := 1; b < bins; b++ {
		idx := b * len(sorted) / bins
		edges[b] = sorted[idx]
	}
	snap := Snapshot{Edges: edges, Counts: make([]int, bins), Total: len(scores)}
	for _, s := range scores {
		snap.Counts[binOf(edges, s)]++
	}
	return snap
}

func binOf(edges []float64, v float64) int {
	// edges[0] = -inf, edges[len-1] = +inf; find the first upper edge > v.
	for b := 1; b < len(edges); b++ {
		if v < edges[b] {
			return b - 1
		}
	}
	return len(edges) - 2
}

// Observe feeds production scores into the sliding window.
func (m *ScoreMonitor) Observe(scores ...float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.window = append(m.window, scores...)
	if len(m.window) > m.windowN {
		m.window = m.window[len(m.window)-m.windowN:]
	}
}

// PSI computes the Population Stability Index of the current window
// against the baseline. Returns an error when the window is too small for
// a meaningful comparison.
func (m *ScoreMonitor) PSI() (float64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.psiLocked()
}

func (m *ScoreMonitor) psiLocked() (float64, error) {
	if len(m.window) < DefaultBins*5 {
		return 0, fmt.Errorf("monitor: window too small (%d scores)", len(m.window))
	}
	return psiOf(m.baseline, m.window)
}

// psiOf computes PSI of window against a binned baseline. Every edge case
// comes back as a defined value or an explicit error — never NaN: an empty
// baseline or window errors instead of dividing by zero, and NaN scores
// (which bin into the last bucket) cannot poison the sum because the
// proportions stay finite.
func psiOf(baseline Snapshot, window []float64) (float64, error) {
	if baseline.Total == 0 || len(baseline.Counts) == 0 {
		return 0, fmt.Errorf("monitor: empty baseline distribution")
	}
	if len(window) == 0 {
		return 0, fmt.Errorf("monitor: empty score window")
	}
	bins := len(baseline.Counts)
	cur := make([]int, bins)
	for _, s := range window {
		cur[binOf(baseline.Edges, s)]++
	}
	const eps = 1e-4
	var psi float64
	for b := 0; b < bins; b++ {
		pBase := float64(baseline.Counts[b]) / float64(baseline.Total)
		pCur := float64(cur[b]) / float64(len(window))
		if pBase < eps {
			pBase = eps
		}
		if pCur < eps {
			pCur = eps
		}
		psi += (pCur - pBase) * math.Log(pCur/pBase)
	}
	if math.IsNaN(psi) || math.IsInf(psi, 0) {
		return 0, fmt.Errorf("monitor: degenerate distribution (non-finite PSI)")
	}
	return psi, nil
}

// PSIBetween computes the Population Stability Index of cur against ref
// without a ScoreMonitor — the comparison the inference plane's canary gate
// runs between a candidate's mirrored scores and the serving model's.
// Unlike ScoreMonitor.PSI it has no minimum window: short references
// degrade to coarser bins and a single-valued reference collapses to one
// bin (PSI 0 unless the current scores escape it). The returned status is
// always defined; only empty inputs error.
func PSIBetween(ref, cur []float64) (float64, DriftStatus, error) {
	if len(ref) == 0 {
		return 0, Stable, fmt.Errorf("monitor: empty reference window")
	}
	if len(cur) == 0 {
		return 0, Stable, fmt.Errorf("monitor: empty current window")
	}
	bins := DefaultBins
	if len(ref) < bins {
		bins = len(ref)
	}
	psi, err := psiOf(binByQuantiles(ref, bins), cur)
	if err != nil {
		return 0, Stable, err
	}
	return psi, StatusOf(psi), nil
}

// Check computes PSI, records an alert when drift is non-stable, and
// returns the status.
func (m *ScoreMonitor) Check() (DriftStatus, float64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	psi, err := m.psiLocked()
	if err != nil {
		return Stable, 0, err
	}
	status := StatusOf(psi)
	if status != Stable {
		m.alerts = append(m.alerts, Alert{At: time.Now(), Model: m.Model, PSI: psi, Status: status})
	}
	return status, psi, nil
}

// Alerts returns the recorded drift alerts.
func (m *ScoreMonitor) Alerts() []Alert {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Alert(nil), m.alerts...)
}

// WindowSize reports the current window occupancy.
func (m *ScoreMonitor) WindowSize() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.window)
}
