package monitor

import (
	"testing"
	"testing/quick"

	"repro/internal/ml"
)

func baselineScores(n int, seed uint64) []float64 {
	r := ml.NewRand(seed)
	out := make([]float64, n)
	for i := range out {
		out[i] = ml.Sigmoid(r.NormFloat64())
	}
	return out
}

func TestMonitorStableOnSameDistribution(t *testing.T) {
	base := baselineScores(2000, 1)
	m, err := NewScoreMonitor("churn", base, 1000)
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(baselineScores(800, 2)...)
	status, psi, err := m.Check()
	if err != nil {
		t.Fatal(err)
	}
	if status != Stable {
		t.Errorf("same distribution flagged as %v (PSI=%v)", status, psi)
	}
	if len(m.Alerts()) != 0 {
		t.Errorf("alerts = %v", m.Alerts())
	}
}

func TestMonitorDetectsShift(t *testing.T) {
	base := baselineScores(2000, 3)
	m, err := NewScoreMonitor("churn", base, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Shifted production distribution: scores pushed toward 1.
	r := ml.NewRand(4)
	shifted := make([]float64, 800)
	for i := range shifted {
		shifted[i] = ml.Sigmoid(r.NormFloat64() + 2)
	}
	m.Observe(shifted...)
	status, psi, err := m.Check()
	if err != nil {
		t.Fatal(err)
	}
	if status != Severe {
		t.Errorf("large shift classified as %v (PSI=%v)", status, psi)
	}
	alerts := m.Alerts()
	if len(alerts) != 1 || alerts[0].Model != "churn" {
		t.Errorf("alerts = %+v", alerts)
	}
}

func TestMonitorWindowSliding(t *testing.T) {
	m, err := NewScoreMonitor("m", baselineScores(500, 5), 100)
	if err != nil {
		t.Fatal(err)
	}
	m.Observe(baselineScores(250, 6)...)
	if m.WindowSize() != 100 {
		t.Errorf("window = %d, want 100 (sliding)", m.WindowSize())
	}
}

func TestMonitorErrors(t *testing.T) {
	if _, err := NewScoreMonitor("m", []float64{0.1}, 10); err == nil {
		t.Error("tiny baseline should error")
	}
	m, _ := NewScoreMonitor("m", baselineScores(100, 7), 100)
	if _, err := m.PSI(); err == nil {
		t.Error("empty window should error")
	}
}

func TestDriftStatusString(t *testing.T) {
	if Stable.String() != "stable" || Moderate.String() != "moderate-drift" || Severe.String() != "severe-drift" {
		t.Error("status labels changed")
	}
}

// Property: PSI is non-negative and near zero when the window is an exact
// replay of the baseline.
func TestPSIProperty(t *testing.T) {
	f := func(seed uint16) bool {
		base := baselineScores(600, uint64(seed)+10)
		m, err := NewScoreMonitor("p", base, 600)
		if err != nil {
			return false
		}
		m.Observe(base...)
		psi, err := m.PSI()
		if err != nil {
			return false
		}
		return psi >= 0 && psi < 0.01
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
