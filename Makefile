# Single-command entry points; CI runs the same steps (see
# .github/workflows/ci.yml and docs/invariants.md).

GOBIN := $(shell go env GOPATH)/bin

# Pinned external linter versions — bump deliberately, with the CI job.
STATICCHECK_VERSION := 2025.1
GOVULNCHECK_VERSION := v1.1.4

.PHONY: build test race lint lint-tools vet fmt

build:
	go build ./...

test:
	go test ./...

race:
	go test -race ./...

fmt:
	gofmt -l .

vet:
	go vet ./...

# lint: the blocking static gate. Builds the in-repo invariant suite and
# runs it through go vet's -vettool protocol (results ride the build
# cache), then the analyzer self-tests.
lint:
	go build -o bin/flock-vet ./cmd/flock-vet
	go vet -vettool=$(CURDIR)/bin/flock-vet ./...
	go test ./internal/lint/...

# lint-tools: the pinned external linters. Separate target because they
# need network access to install; CI runs them as their own jobs.
lint-tools:
	go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
	go install golang.org/x/vuln/cmd/govulncheck@$(GOVULNCHECK_VERSION)
	$(GOBIN)/staticcheck ./...
	$(GOBIN)/govulncheck ./...
